//! Region BTB: one entry per aligned memory region with a fixed number of
//! branch slots (§2.2), including the even/odd set-interleaved 2L1 variant
//! (§6.2) and configurable region sizes (64 B / 128 B, Fig. 7).

use crate::config::{BtbConfig, BtbLevel, OrgKind};
use crate::hierarchy::TwoLevel;
use crate::inspect::{BtbInspection, LevelInspection};
use crate::org::{bubbles_for, BtbOrganization};
use crate::plan::{FetchPlan, PlanEnd, PlanSegment, PlannedBranch, PredictionProvider};
use crate::probe::{BranchProbe, BtbState};
use btb_trace::{Addr, BranchKind, TraceRecord, INST_BYTES};
use std::collections::HashMap;

/// One branch slot of a region entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RSlot {
    /// Instruction offset within the region.
    pub(crate) offset: u16,
    pub(crate) kind: BranchKind,
    pub(crate) target: Addr,
    /// Per-slot recency for the within-entry replacement policy.
    pub(crate) last_use: u64,
}

/// One R-BTB entry: branch slots for an aligned region, ordered by offset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct REntry {
    pub(crate) slots: Vec<RSlot>,
}

/// Canonical content string for an [`REntry`] (state dumps); shared with
/// the heterogeneous and overflow organizations.
pub(crate) fn fmt_rentry(e: &REntry) -> String {
    e.slots
        .iter()
        .map(|s| format!("o{}:{:?}->{:#x}@{}", s.offset, s.kind, s.target, s.last_use))
        .collect::<Vec<_>>()
        .join(";")
}

/// The Region BTB organization.
#[derive(Debug, Clone)]
pub struct RegionBtb {
    config: BtbConfig,
    region_bytes: u64,
    slots: usize,
    dual: bool,
    store: TwoLevel<REntry>,
    tick: u64,
}

impl RegionBtb {
    /// Creates an R-BTB from a configuration whose kind must be
    /// [`OrgKind::Region`].
    ///
    /// # Panics
    /// Panics if the configuration is of a different organization kind or
    /// the region size is not a positive multiple of the instruction size.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        let OrgKind::Region {
            region_bytes,
            slots,
            dual_interleave,
        } = config.kind
        else {
            panic!("RegionBtb requires OrgKind::Region");
        };
        assert!(
            region_bytes.is_power_of_two() && region_bytes >= INST_BYTES,
            "region size must be a power of two of at least one instruction"
        );
        assert!(slots > 0, "R-BTB needs at least one branch slot");
        RegionBtb {
            store: TwoLevel::new(config.l1, config.l2),
            region_bytes,
            slots,
            dual: dual_interleave,
            config,
            tick: 0,
        }
    }

    fn region_of(&self, pc: Addr) -> Addr {
        pc & !(self.region_bytes - 1)
    }

    fn key(&self, region: Addr) -> u64 {
        region / self.region_bytes
    }

    fn predict_slot(slot: &RSlot, pc: Addr, oracle: &mut dyn PredictionProvider) -> (bool, Addr) {
        match slot.kind {
            BranchKind::CondDirect => (oracle.predict_cond(pc), slot.target),
            BranchKind::UncondDirect | BranchKind::DirectCall => (true, slot.target),
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                (true, oracle.predict_indirect(pc).unwrap_or(slot.target))
            }
            BranchKind::Return => (true, oracle.predict_return(pc).unwrap_or(slot.target)),
        }
    }
}

impl BtbOrganization for RegionBtb {
    fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn clone_box(&self) -> Box<dyn BtbOrganization> {
        Box::new(self.clone())
    }

    fn plan(&mut self, pc: Addr, oracle: &mut dyn PredictionProvider) -> FetchPlan {
        let first_region = self.region_of(pc);
        let num_regions = if self.dual { 2 } else { 1 };
        let mut branches = Vec::new();
        let mut used_l2 = false;
        for ri in 0..num_regions {
            let region = first_region + ri * self.region_bytes;
            let lookup = self.store.lookup_fill(self.key(region));
            let Some((entry, level)) = lookup else {
                continue;
            };
            used_l2 |= level == BtbLevel::L2;
            for slot in &entry.slots {
                let slot_pc = region + u64::from(slot.offset) * INST_BYTES;
                // §3.6.1: slots before the unaligned access PC do not
                // participate (the offset comparison on the critical path).
                if slot_pc < pc {
                    continue;
                }
                let (taken, target) = Self::predict_slot(slot, slot_pc, oracle);
                if slot.kind.is_call() && taken {
                    oracle.note_call(slot_pc + INST_BYTES);
                }
                branches.push(PlannedBranch {
                    pc: slot_pc,
                    kind: slot.kind,
                    taken,
                    target,
                    level,
                });
                if taken {
                    return FetchPlan {
                        access_pc: pc,
                        segments: vec![PlanSegment {
                            start: pc,
                            end: slot_pc + INST_BYTES,
                        }],
                        branches,
                        next_pc: target,
                        bubbles: bubbles_for(level, slot.kind, &self.config.timing),
                        end: PlanEnd::TakenBranch,
                        used_l2,
                    };
                }
            }
        }
        // No predicted-taken slot: sequential through the window end.
        let window_end = first_region + num_regions * self.region_bytes;
        FetchPlan {
            access_pc: pc,
            segments: vec![PlanSegment {
                start: pc,
                end: window_end,
            }],
            branches,
            next_pc: window_end,
            bubbles: 0,
            end: PlanEnd::WindowEnd,
            used_l2,
        }
    }

    fn update(&mut self, rec: &TraceRecord) {
        let Some(kind) = rec.branch_kind() else {
            return;
        };
        if !rec.taken {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let region = self.region_of(rec.pc);
        let offset = ((rec.pc - region) / INST_BYTES) as u16;
        let target = rec.target;
        let max_slots = self.slots;
        self.store
            .update_with(self.key(region), REntry::default, |e| {
                if let Some(s) = e.slots.iter_mut().find(|s| s.offset == offset) {
                    s.kind = kind;
                    s.target = target;
                    s.last_use = tick;
                    return;
                }
                let new = RSlot {
                    offset,
                    kind,
                    target,
                    last_use: tick,
                };
                if e.slots.len() < max_slots {
                    let at = e.slots.partition_point(|s| s.offset < offset);
                    e.slots.insert(at, new);
                } else {
                    // Slot pressure (§3.5): displace the LRU slot.
                    let victim = e
                        .slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.last_use)
                        .map(|(i, _)| i)
                        .expect("slots non-empty");
                    e.slots.remove(victim);
                    let at = e.slots.partition_point(|s| s.offset < offset);
                    e.slots.insert(at, new);
                }
            });
    }

    fn preload(&mut self, pc: Addr) {
        // Promote the region entries covering the surrounding 512 B.
        let start = pc & !511;
        let mut region = start & !(self.region_bytes - 1);
        while region < start + 512 {
            let key = self.key(region);
            self.store.promote(key);
            region += self.region_bytes;
        }
    }

    fn probe_branch(&self, pc: Addr) -> Option<BranchProbe> {
        // Entry granularity mirrors `lookup_fill`: the first level holding
        // the *region entry* answers; if that entry lacks the branch's slot
        // the probe misses (the other level is not consulted).
        let region = self.region_of(pc);
        let offset = ((pc - region) / INST_BYTES) as u16;
        let (entry, level) = self.store.peek(self.key(region))?;
        let slot = entry.slots.iter().find(|s| s.offset == offset)?;
        Some(BranchProbe {
            level,
            kind: slot.kind,
            target: slot.target,
        })
    }

    fn dump_state(&self) -> BtbState {
        let (l1, l2) = self.store.dump_levels(fmt_rentry);
        BtbState {
            l1,
            l2,
            aux: Vec::new(),
        }
    }

    fn inspect(&self) -> BtbInspection {
        let region_bytes = self.region_bytes;
        let slots = self.slots;
        let level = |s: &crate::storage::SetAssoc<REntry>| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for (k, e) in s.iter() {
                let region = k * region_bytes;
                for slot in &e.slots {
                    let pc = region + u64::from(slot.offset) * INST_BYTES;
                    *counts.entry(pc).or_insert(0) += 1;
                }
            }
            LevelInspection::from_branch_map(s.len(), s.capacity(), slots, &counts)
        };
        BtbInspection {
            l1: level(self.store.l1()),
            l2: self.store.l2().map(level).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FixedOracle;

    fn ideal(region_bytes: u64, slots: usize, dual: bool) -> RegionBtb {
        RegionBtb::new(BtbConfig::ideal(
            "test",
            OrgKind::Region {
                region_bytes,
                slots,
                dual_interleave: dual,
            },
        ))
    }

    fn taken(pc: Addr, kind: BranchKind, target: Addr) -> TraceRecord {
        TraceRecord::branch(pc, kind, true, target)
    }

    #[test]
    fn plan_never_crosses_region_boundary() {
        let mut b = ideal(64, 2, false);
        // Access mid-region: window covers only to the region end.
        let p = b.plan(0x1010, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x1040);
        assert_eq!(p.fetch_pcs(), 12); // 0x1010..0x1040
    }

    #[test]
    fn dual_interleave_covers_two_regions() {
        let mut b = ideal(64, 2, true);
        let p = b.plan(0x1010, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x1080);
        assert_eq!(p.fetch_pcs(), 28);
    }

    #[test]
    fn taken_slot_ends_plan() {
        let mut b = ideal(64, 2, false);
        b.update(&taken(0x1008, BranchKind::UncondDirect, 0x2000));
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x2000);
        assert_eq!(p.fetch_pcs(), 3);
        assert_eq!(p.end, PlanEnd::TakenBranch);
    }

    #[test]
    fn slots_below_access_pc_are_ignored() {
        // §3.6.1 example: entry with branches at +0x4 and +0x1c; accessing
        // through 0x10 must only see the branch at 0x1c.
        let mut b = ideal(64, 2, false);
        b.update(&taken(0x1004, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x101c, BranchKind::UncondDirect, 0x3000));
        let p = b.plan(0x1010, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x3000);
        assert!(p.branch_at(0x1004).is_none());
        assert!(p.branch_at(0x101c).is_some());
    }

    #[test]
    fn slot_overflow_displaces_lru() {
        let mut b = ideal(64, 2, false);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1008, BranchKind::UncondDirect, 0x3000));
        // Touch 0x1000 so 0x1008 is LRU, then overflow.
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1010, BranchKind::UncondDirect, 0x4000));
        let ins = b.inspect();
        assert_eq!(ins.l1.used_slots, 2);
        // 0x1008 was displaced: a plan from 0x1004 skips straight to 0x1010.
        let p = b.plan(0x1004, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x4000);
        assert!(p.branch_at(0x1008).is_none());
    }

    #[test]
    fn slots_stay_sorted_by_offset() {
        let mut b = ideal(64, 4, false);
        b.update(&taken(0x1018, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1008, BranchKind::CondDirect, 0x3000));
        b.update(&taken(0x1010, BranchKind::CondDirect, 0x4000));
        // With everything predicted taken, the earliest offset must win.
        let mut oracle = FixedOracle {
            taken: vec![0x1008, 0x1010],
            ..FixedOracle::default()
        };
        let p = b.plan(0x1000, &mut oracle);
        assert_eq!(p.next_pc, 0x3000);
    }

    #[test]
    fn regions_are_independent_entries() {
        let mut b = ideal(64, 1, false);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1040, BranchKind::UncondDirect, 0x3000));
        let ins = b.inspect();
        assert_eq!(ins.l1.entries, 2);
        assert!(
            (ins.l1.redundancy() - 1.0).abs() < 1e-9,
            "R-BTB never redundant"
        );
    }

    #[test]
    fn region_128b_window() {
        let mut b = ideal(128, 4, false);
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.fetch_pcs(), 32);
        assert_eq!(p.next_pc, 0x1080);
    }

    #[test]
    fn never_taken_branches_do_not_allocate() {
        let mut b = ideal(64, 2, false);
        b.update(&TraceRecord::branch(
            0x1004,
            BranchKind::CondDirect,
            false,
            0x2000,
        ));
        assert_eq!(b.inspect().l1.entries, 0);
    }

    #[test]
    fn dual_interleave_sees_branches_in_second_region() {
        let mut b = ideal(64, 2, true);
        b.update(&taken(0x1048, BranchKind::UncondDirect, 0x9000));
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x9000);
        assert_eq!(p.fetch_pcs(), 19); // 0x1000..=0x1048
    }
}
