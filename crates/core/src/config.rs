//! BTB configuration: organization kinds, level geometries and the named
//! configurations evaluated in the paper.

use btb_trace::INST_BYTES;

/// Which BTB level serviced a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BtbLevel {
    /// First-level BTB: 0-cycle taken-branch turnaround.
    L1,
    /// Second-level BTB: taken-branch bubbles (3 in Table 1).
    L2,
}

/// Which branches an MB-BTB entry may "pull" target blocks for (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullPolicy {
    /// Only unconditional direct jumps (excluding calls).
    UncondDirect,
    /// Unconditional direct jumps plus direct calls.
    CallDirect,
    /// `CallDirect` plus always-taken conditionals and stable-target
    /// indirect branches (threshold counter, §6.4.2).
    AllBranches,
}

/// The BTB entry organization under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// Instruction BTB: one entry per branch, `width` banked lookups per
    /// access. `skip_taken` models the idealized "I-BTB 16 Skp" that keeps
    /// providing fetch PCs across taken branches.
    Instruction {
        /// Number of sequential instruction lookups per access (banks).
        width: usize,
        /// Idealized variant that continues across taken branches.
        skip_taken: bool,
    },
    /// Region BTB: one entry per aligned `region_bytes` region with `slots`
    /// branch slots. `dual_interleave` models the even/odd set-interleaved
    /// 2L1 R-BTB (§6.2) that covers two sequential regions per access.
    Region {
        /// Aligned region size in bytes (64 or 128 in the paper).
        region_bytes: u64,
        /// Branch slots per entry.
        slots: usize,
        /// Even/odd interleaved L1 (2L1 R-BTB).
        dual_interleave: bool,
    },
    /// Block BTB: one entry per dynamic block start, up to `block_insts`
    /// instructions and `slots` branch slots; `split` enables entry
    /// splitting on slot overflow (§6.3).
    Block {
        /// Maximum block reach in instructions (16/32/64 in the paper).
        block_insts: usize,
        /// Branch slots per entry.
        slots: usize,
        /// Split entries instead of displacing branch metadata.
        split: bool,
    },
    /// Region BTB with decoupled shared overflow branch slots (§3.5's
    /// second mitigation, as in IBM z16 / AMD Bobcat / Samsung Exynos /
    /// Confluence). Overflow-served branches cost one extra bubble.
    RegionOverflow {
        /// Aligned region size in bytes.
        region_bytes: u64,
        /// Fixed branch slots per region entry.
        slots: usize,
        /// Entries of the shared overflow table.
        overflow_entries: usize,
    },
    /// Heterogeneous hierarchy (§3.6.2, the paper's future work): a Block
    /// BTB first level backed by a redundancy-free Region BTB second level.
    HeteroBlockRegion {
        /// L1 block reach in instructions.
        block_insts: usize,
        /// L1 branch slots per block entry.
        l1_slots: usize,
        /// L1 entry splitting.
        split: bool,
        /// L2 region size in bytes.
        region_bytes: u64,
        /// L2 branch slots per region entry.
        l2_slots: usize,
    },
    /// MultiBlock BTB (§6.4): a Block BTB whose entries chain target blocks
    /// of eligible branches.
    MultiBlock {
        /// Maximum reach of each chained block in instructions.
        block_insts: usize,
        /// Branch slots per entry (also bounds chain length to slots+1).
        slots: usize,
        /// Which branches may pull their target block.
        pull: PullPolicy,
        /// Consecutive same-target observations required before an indirect
        /// branch pulls its target (63 in the paper).
        stability_threshold: u8,
        /// Whether the entry's last slot may pull (the paper disallows it,
        /// §6.4.2); exposed for the ablation bench.
        allow_last_slot_pull: bool,
    },
}

impl OrgKind {
    /// Branch slots per entry (1 for the Instruction organization).
    #[must_use]
    pub fn slots(&self) -> usize {
        match *self {
            OrgKind::Instruction { .. } => 1,
            OrgKind::Region { slots, .. }
            | OrgKind::Block { slots, .. }
            | OrgKind::MultiBlock { slots, .. } => slots,
            OrgKind::HeteroBlockRegion { l1_slots, .. } => l1_slots,
            OrgKind::RegionOverflow { slots, .. } => slots,
        }
    }
}

/// Geometry of one BTB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelGeometry {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
}

impl LevelGeometry {
    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// Timing parameters of the hierarchy (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbTiming {
    /// Bubbles on a taken branch serviced by the L1 BTB (0 in Table 1; the
    /// §1/§3.6.1 limit study sets it to 1 to price 0-cycle turnaround).
    pub l1_bubbles: u32,
    /// Bubbles on a taken branch serviced by the L2 BTB (3 in Table 1).
    pub l2_bubbles: u32,
    /// Extra bubble for non-return indirect branches.
    pub indirect_extra: u32,
}

impl Default for BtbTiming {
    fn default() -> Self {
        BtbTiming {
            l1_bubbles: 0,
            l2_bubbles: 3,
            indirect_extra: 1,
        }
    }
}

/// Full configuration of a BTB hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BtbConfig {
    /// Display name used in reports (e.g. `"B-BTB 1BS Splt"`).
    pub name: String,
    /// Entry organization.
    pub kind: OrgKind,
    /// L1 geometry.
    pub l1: LevelGeometry,
    /// Optional L2 geometry (absent for idealistic single-level configs).
    pub l2: Option<LevelGeometry>,
    /// Timing parameters.
    pub timing: BtbTiming,
}

impl BtbConfig {
    /// The idealistic 512K-entry single-level geometry used in §5 and the
    /// Fig. 11 limit studies (16K sets × 32 ways, 0-cycle).
    #[must_use]
    pub fn ideal_geometry() -> LevelGeometry {
        LevelGeometry {
            sets: 16384,
            ways: 32,
        }
    }

    /// Idealistic configuration of the given organization (huge L1, no L2).
    #[must_use]
    pub fn ideal(name: &str, kind: OrgKind) -> Self {
        BtbConfig {
            name: name.to_owned(),
            kind,
            l1: Self::ideal_geometry(),
            l2: None,
            timing: BtbTiming::default(),
        }
    }

    /// Realistic two-level configuration with the paper's §6.1 sizing rule:
    /// the I-BTB geometry (3K-entry L1: 512×6; 13K-entry L2: 1024×13) is
    /// resized so total branch slots stay constant as slots/entry grows.
    ///
    /// * 1 slot  → 512×6 L1, 1024×13 L2 (1× I-BTB)
    /// * 2 slots → 256×6 L1,  512×13 L2 (0.5×)
    /// * 3 slots → 256×4 L1 (1K entries), 256×18 L2 (4.5K entries)
    /// * 4 slots → 128×6 L1,  256×13 L2 (0.25×)
    ///
    /// # Panics
    /// Panics for slot counts other than 1, 2, 3, 4 or 16 (16 reuses the
    /// 2-slot/3-slot geometry via [`BtbConfig::realistic_with_geometry`]).
    #[must_use]
    pub fn realistic(name: &str, kind: OrgKind) -> Self {
        let slots = kind.slots();
        let (l1, l2) = Self::realistic_geometry_for_slots(slots);
        BtbConfig {
            name: name.to_owned(),
            kind,
            l1,
            l2: Some(l2),
            timing: BtbTiming::default(),
        }
    }

    /// The §6.1 geometry pair for a given slots-per-entry count.
    ///
    /// # Panics
    /// Panics for unsupported slot counts.
    #[must_use]
    pub fn realistic_geometry_for_slots(slots: usize) -> (LevelGeometry, LevelGeometry) {
        match slots {
            1 => (
                LevelGeometry { sets: 512, ways: 6 },
                LevelGeometry {
                    sets: 1024,
                    ways: 13,
                },
            ),
            2 => (
                LevelGeometry { sets: 256, ways: 6 },
                LevelGeometry {
                    sets: 512,
                    ways: 13,
                },
            ),
            3 => (
                LevelGeometry { sets: 256, ways: 4 },
                LevelGeometry {
                    sets: 256,
                    ways: 18,
                },
            ),
            4 => (
                LevelGeometry { sets: 128, ways: 6 },
                LevelGeometry {
                    sets: 256,
                    ways: 13,
                },
            ),
            6 => (
                LevelGeometry { sets: 128, ways: 4 },
                LevelGeometry {
                    sets: 128,
                    ways: 17,
                },
            ),
            other => panic!("no paper geometry for {other} slots per entry"),
        }
    }

    /// Realistic configuration with an explicit geometry (used for the
    /// "2Geo 16BS"/"3Geo 16BS" experiments of Fig. 7 that keep a smaller
    /// geometry while provisioning 16 slots).
    #[must_use]
    pub fn realistic_with_geometry(
        name: &str,
        kind: OrgKind,
        l1: LevelGeometry,
        l2: LevelGeometry,
    ) -> Self {
        BtbConfig {
            name: name.to_owned(),
            kind,
            l1,
            l2: Some(l2),
            timing: BtbTiming::default(),
        }
    }

    /// Region size in instructions for region organizations.
    #[must_use]
    pub fn region_insts(&self) -> Option<u64> {
        match self.kind {
            OrgKind::Region { region_bytes, .. } => Some(region_bytes / INST_BYTES),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_geometry_is_512k_entries() {
        assert_eq!(BtbConfig::ideal_geometry().entries(), 512 * 1024);
    }

    #[test]
    fn realistic_slot_scaling_matches_paper() {
        let (l1, l2) = BtbConfig::realistic_geometry_for_slots(1);
        assert_eq!(l1.entries(), 3072);
        assert_eq!(l2.entries(), 13312);
        let (l1, l2) = BtbConfig::realistic_geometry_for_slots(3);
        assert_eq!(l1.entries(), 1024);
        assert_eq!(l2.entries(), 4608);
        // Total branch slots stay roughly constant.
        for s in [1usize, 2, 4] {
            let (l1, l2) = BtbConfig::realistic_geometry_for_slots(s);
            assert_eq!(l1.entries() * s, 3072, "L1 slots for {s}BS");
            assert_eq!(l2.entries() * s, 13312, "L2 slots for {s}BS");
        }
    }

    #[test]
    fn org_kind_slot_accessor() {
        assert_eq!(
            OrgKind::Instruction {
                width: 16,
                skip_taken: false
            }
            .slots(),
            1
        );
        assert_eq!(
            OrgKind::Block {
                block_insts: 16,
                slots: 3,
                split: true
            }
            .slots(),
            3
        );
    }

    #[test]
    #[should_panic(expected = "no paper geometry")]
    fn unsupported_slot_count_panics() {
        let _ = BtbConfig::realistic_geometry_for_slots(5);
    }

    #[test]
    fn default_timing_matches_table1() {
        let t = BtbTiming::default();
        assert_eq!(t.l2_bubbles, 3);
        assert_eq!(t.indirect_extra, 1);
    }
}
