//! Region BTB with decoupled shared overflow branch slots (§3.5's second
//! mitigation, used by IBM z16, AMD Bobcat, Samsung Exynos and Confluence):
//! when a region's fixed slots overflow, displaced branches spill into a
//! shared associative overflow table instead of being lost. Overflow-served
//! branches "incur extra latency" (§3.5) — one extra bubble here.
//!
//! The paper's Fig. 7 `nGeo 16BS` configurations are the zero-cost upper
//! bound of this mechanism; this organization realizes it with bounded
//! shared storage and the latency tax.

use crate::config::{BtbConfig, BtbLevel, OrgKind};
use crate::hierarchy::TwoLevel;
use crate::inspect::{BtbInspection, LevelInspection};
use crate::org::{bubbles_for, BtbOrganization};
use crate::plan::{FetchPlan, PlanEnd, PlanSegment, PlannedBranch, PredictionProvider};
use crate::probe::{BranchProbe, BtbState, LevelState};
use crate::rbtb::{fmt_rentry, REntry, RSlot};
use crate::storage::SetAssoc;
use btb_trace::{Addr, BranchKind, TraceRecord, INST_BYTES};
use std::collections::HashMap;

/// An overflow-table entry: one spilled branch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OvfEntry {
    kind: BranchKind,
    target: Addr,
}

/// Region BTB with shared overflow slots.
#[derive(Debug, Clone)]
pub struct RegionOverflowBtb {
    config: BtbConfig,
    region_bytes: u64,
    slots: usize,
    store: TwoLevel<REntry>,
    /// Shared overflow storage, keyed by branch PC.
    overflow: SetAssoc<OvfEntry>,
    /// Regions that have spilled at least one branch (the "overflow bit").
    spilled: SetAssoc<()>,
    tick: u64,
}

impl RegionOverflowBtb {
    /// Creates the organization from a configuration whose kind must be
    /// [`OrgKind::RegionOverflow`].
    ///
    /// # Panics
    /// Panics if the configuration is of a different organization kind.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        let OrgKind::RegionOverflow {
            region_bytes,
            slots,
            overflow_entries,
        } = config.kind
        else {
            panic!("RegionOverflowBtb requires OrgKind::RegionOverflow");
        };
        assert!(region_bytes.is_power_of_two() && region_bytes >= INST_BYTES);
        assert!(slots > 0 && overflow_entries > 0);
        let ovf_sets = (overflow_entries / 4).next_power_of_two().max(4);
        RegionOverflowBtb {
            store: TwoLevel::new(config.l1, config.l2),
            overflow: SetAssoc::new(ovf_sets, 4),
            spilled: SetAssoc::new(ovf_sets, 4),
            region_bytes,
            slots,
            config,
            tick: 0,
        }
    }

    fn region_of(&self, pc: Addr) -> Addr {
        pc & !(self.region_bytes - 1)
    }

    fn key(&self, region: Addr) -> u64 {
        region / self.region_bytes
    }

    fn predict(
        kind: BranchKind,
        target: Addr,
        pc: Addr,
        oracle: &mut dyn PredictionProvider,
    ) -> (bool, Addr) {
        match kind {
            BranchKind::CondDirect => (oracle.predict_cond(pc), target),
            BranchKind::UncondDirect | BranchKind::DirectCall => (true, target),
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                (true, oracle.predict_indirect(pc).unwrap_or(target))
            }
            BranchKind::Return => (true, oracle.predict_return(pc).unwrap_or(target)),
        }
    }
}

impl BtbOrganization for RegionOverflowBtb {
    fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn clone_box(&self) -> Box<dyn BtbOrganization> {
        Box::new(self.clone())
    }

    fn plan(&mut self, pc: Addr, oracle: &mut dyn PredictionProvider) -> FetchPlan {
        let region = self.region_of(pc);
        let window_end = region + self.region_bytes;
        let mut branches = Vec::new();
        let mut used_l2 = false;
        // Collect candidate branches: region slots plus (if the region has
        // spilled) overflow probes for every window PC.
        let mut candidates: Vec<(Addr, BranchKind, Addr, BtbLevel, bool)> = Vec::new();
        if let Some((entry, level)) = self.store.lookup_fill(self.key(region)) {
            used_l2 |= level == BtbLevel::L2;
            for slot in &entry.slots {
                let slot_pc = region + u64::from(slot.offset) * INST_BYTES;
                if slot_pc >= pc {
                    candidates.push((slot_pc, slot.kind, slot.target, level, false));
                }
            }
            if self.spilled.peek(self.key(region)).is_some() {
                let mut probe = pc;
                while probe < window_end {
                    if let Some(e) = self.overflow.get(probe >> 2) {
                        candidates.push((probe, e.kind, e.target, level, true));
                    }
                    probe += INST_BYTES;
                }
            }
        }
        candidates.sort_by_key(|c| c.0);
        candidates.dedup_by_key(|c| c.0);
        for (slot_pc, kind, stored, level, from_overflow) in candidates {
            let (taken, target) = Self::predict(kind, stored, slot_pc, oracle);
            if kind.is_call() && taken {
                oracle.note_call(slot_pc + INST_BYTES);
            }
            branches.push(PlannedBranch {
                pc: slot_pc,
                kind,
                taken,
                target,
                level,
            });
            if taken {
                // §3.5: overflow branches incur extra latency.
                let bubbles =
                    bubbles_for(level, kind, &self.config.timing) + u32::from(from_overflow);
                return FetchPlan {
                    access_pc: pc,
                    segments: vec![PlanSegment {
                        start: pc,
                        end: slot_pc + INST_BYTES,
                    }],
                    branches,
                    next_pc: target,
                    bubbles,
                    end: PlanEnd::TakenBranch,
                    used_l2,
                };
            }
        }
        FetchPlan {
            access_pc: pc,
            segments: vec![PlanSegment {
                start: pc,
                end: window_end,
            }],
            branches,
            next_pc: window_end,
            bubbles: 0,
            end: PlanEnd::WindowEnd,
            used_l2,
        }
    }

    fn update(&mut self, rec: &TraceRecord) {
        let Some(kind) = rec.branch_kind() else {
            return;
        };
        if !rec.taken {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let region = self.region_of(rec.pc);
        let offset = ((rec.pc - region) / INST_BYTES) as u16;
        let target = rec.target;
        let max_slots = self.slots;
        // If the branch already lives in the overflow table, refresh there.
        if self.overflow.get_mut(rec.pc >> 2).is_some() {
            self.overflow.insert(rec.pc >> 2, OvfEntry { kind, target });
            return;
        }
        let mut spill: Option<(Addr, RSlot)> = None;
        self.store
            .update_with(self.key(region), REntry::default, |e| {
                if let Some(s) = e.slots.iter_mut().find(|s| s.offset == offset) {
                    s.kind = kind;
                    s.target = target;
                    s.last_use = tick;
                    return;
                }
                let new = RSlot {
                    offset,
                    kind,
                    target,
                    last_use: tick,
                };
                let at = e.slots.partition_point(|s| s.offset < offset);
                if e.slots.len() < max_slots {
                    e.slots.insert(at, new);
                    return;
                }
                // Spill the LRU slot to the shared overflow table.
                let victim_idx = e
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_use)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let victim = e.slots.remove(victim_idx);
                let at = e.slots.partition_point(|s| s.offset < offset);
                e.slots.insert(at, new);
                spill = Some((region, victim));
            });
        if let Some((region, victim)) = spill {
            let victim_pc = region + u64::from(victim.offset) * INST_BYTES;
            self.overflow.insert(
                victim_pc >> 2,
                OvfEntry {
                    kind: victim.kind,
                    target: victim.target,
                },
            );
            self.spilled.insert(self.key(region), ());
        }
    }

    fn probe_branch(&self, pc: Addr) -> Option<BranchProbe> {
        // Mirrors the plan's candidate rules: the region entry's slots are
        // consulted first; the overflow table only participates when the
        // region entry exists (at some level) and the region has spilled.
        let region = self.region_of(pc);
        let key = self.key(region);
        let offset = ((pc - region) / INST_BYTES) as u16;
        let (entry, level) = self.store.peek(key)?;
        if let Some(slot) = entry.slots.iter().find(|s| s.offset == offset) {
            return Some(BranchProbe {
                level,
                kind: slot.kind,
                target: slot.target,
            });
        }
        if self.spilled.peek(key).is_some() {
            if let Some(e) = self.overflow.peek(pc >> 2) {
                return Some(BranchProbe {
                    level,
                    kind: e.kind,
                    target: e.target,
                });
            }
        }
        None
    }

    fn dump_state(&self) -> BtbState {
        let (l1, l2) = self.store.dump_levels(fmt_rentry);
        BtbState {
            l1,
            l2,
            aux: vec![
                (
                    "overflow".into(),
                    LevelState {
                        sets: self
                            .overflow
                            .dump_with(|e| format!("{:?}->{:#x}", e.kind, e.target)),
                    },
                ),
                (
                    "spilled".into(),
                    LevelState {
                        sets: self.spilled.dump_with(|_e: &()| String::new()),
                    },
                ),
            ],
        }
    }

    fn inspect(&self) -> BtbInspection {
        let region_bytes = self.region_bytes;
        let slots = self.slots;
        let level = |s: &SetAssoc<REntry>| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for (k, e) in s.iter() {
                for slot in &e.slots {
                    let pc = k * region_bytes + u64::from(slot.offset) * INST_BYTES;
                    *counts.entry(pc).or_insert(0) += 1;
                }
            }
            LevelInspection::from_branch_map(s.len(), s.capacity(), slots, &counts)
        };
        let mut ins = BtbInspection {
            l1: level(self.store.l1()),
            l2: self.store.l2().map(level).unwrap_or_default(),
        };
        // Count overflow-resident branches as additional L1 slots in use.
        let mut ovf_counts: HashMap<u64, u64> = HashMap::new();
        for (k, _) in self.overflow.iter() {
            *ovf_counts.entry(k << 2).or_insert(0) += 1;
        }
        ins.l1.used_slots += ovf_counts.len() as u64;
        ins.l1.tracked_pairs += ovf_counts.len() as u64;
        ins.l1.distinct_branches += ovf_counts.len();
        ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FixedOracle;

    fn ovf(slots: usize) -> RegionOverflowBtb {
        RegionOverflowBtb::new(BtbConfig::ideal(
            "R-OVF",
            OrgKind::RegionOverflow {
                region_bytes: 64,
                slots,
                overflow_entries: 256,
            },
        ))
    }

    fn taken(pc: Addr, kind: BranchKind, target: Addr) -> TraceRecord {
        TraceRecord::branch(pc, kind, true, target)
    }

    #[test]
    fn overflowing_branch_survives_in_shared_storage() {
        let mut b = ovf(1);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        // Second branch in the same region displaces the first into
        // overflow — but nothing is lost.
        b.update(&taken(0x1010, BranchKind::UncondDirect, 0x3000));
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x2000, "spilled branch still served");
        assert_eq!(p.bubbles, 1, "overflow service costs an extra bubble");
        // The in-entry branch is served at normal latency.
        let p2 = b.plan(0x1004, &mut FixedOracle::default());
        assert_eq!(p2.next_pc, 0x3000);
        assert_eq!(p2.bubbles, 0);
    }

    #[test]
    fn no_overflow_probing_without_spills() {
        let mut b = ovf(2);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.bubbles, 0);
        assert_eq!(p.next_pc, 0x2000);
    }

    #[test]
    fn overflow_updates_refresh_in_place() {
        let mut b = ovf(1);
        b.update(&taken(0x1000, BranchKind::IndirectJump, 0x2000));
        b.update(&taken(0x1010, BranchKind::UncondDirect, 0x3000)); // spills 0x1000
                                                                    // The spilled indirect branch retargets; the overflow copy updates.
        b.update(&taken(0x1000, BranchKind::IndirectJump, 0x5000));
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x5000);
    }

    #[test]
    fn candidates_stay_in_address_order() {
        let mut b = ovf(1);
        b.update(&taken(0x1010, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1004, BranchKind::UncondDirect, 0x3000)); // spills 0x1010
                                                                    // From 0x1000, the earliest branch (0x1004, in-entry) must win even
                                                                    // though 0x1010 sits in overflow.
        let p = b.plan(0x1000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x3000);
    }

    #[test]
    fn inspection_counts_overflow_slots() {
        let mut b = ovf(1);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x1010, BranchKind::UncondDirect, 0x3000));
        let ins = b.inspect();
        assert_eq!(ins.l1.distinct_branches, 2, "entry slot + overflow slot");
    }
}
