//! Heterogeneous BTB hierarchy (§3.6.2, left as future work by the paper):
//! a Block BTB first level — best suited for 0-cycle turnaround and single
//! access plans — backed by a Region BTB second level, which stores each
//! branch in exactly one entry and thus does not waste L2 capacity on the
//! B-BTB's redundant "synonym" blocks.
//!
//! Lookup: the L1 is accessed with the block-start address like a B-BTB; on
//! a miss, the L2 region entries covering the block window provide branch
//! metadata (with L2 taken-branch bubbles). Updates train both structures
//! independently (immediate update).

use crate::bbtb::{fmt_bentry, BEntry, BSlot};
use crate::config::{BtbConfig, BtbLevel, OrgKind};
use crate::inspect::{BtbInspection, LevelInspection};
use crate::org::{bubbles_for, BtbOrganization};
use crate::plan::{FetchPlan, PlanEnd, PlanSegment, PlannedBranch, PredictionProvider};
use crate::probe::{BranchProbe, BtbState, LevelState};
use crate::rbtb::{fmt_rentry, REntry, RSlot};
use crate::storage::SetAssoc;
use btb_trace::{Addr, BranchKind, TraceRecord, INST_BYTES};
use std::collections::HashMap;

/// A Block-BTB L1 backed by a Region-BTB L2.
#[derive(Debug, Clone)]
pub struct HeteroBtb {
    config: BtbConfig,
    block_insts: usize,
    l1_slots: usize,
    split: bool,
    region_bytes: u64,
    l2_slots: usize,
    l1: SetAssoc<BEntry>,
    l2: SetAssoc<REntry>,
    cur_block: Option<Addr>,
    tick: u64,
}

impl HeteroBtb {
    /// Creates a heterogeneous hierarchy from a configuration whose kind
    /// must be [`OrgKind::HeteroBlockRegion`].
    ///
    /// # Panics
    /// Panics if the configuration is of a different organization kind or
    /// has no L2 geometry.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        let OrgKind::HeteroBlockRegion {
            block_insts,
            l1_slots,
            split,
            region_bytes,
            l2_slots,
        } = config.kind
        else {
            panic!("HeteroBtb requires OrgKind::HeteroBlockRegion");
        };
        let l2_geo = config.l2.expect("heterogeneous hierarchy needs an L2");
        assert!(region_bytes.is_power_of_two() && region_bytes >= INST_BYTES);
        assert!(block_insts > 0 && l1_slots > 0 && l2_slots > 0);
        HeteroBtb {
            l1: SetAssoc::new(config.l1.sets, config.l1.ways),
            l2: SetAssoc::new(l2_geo.sets, l2_geo.ways),
            block_insts,
            l1_slots,
            split,
            region_bytes,
            l2_slots,
            config,
            cur_block: None,
            tick: 0,
        }
    }

    fn block_bytes(&self) -> u64 {
        self.block_insts as u64 * INST_BYTES
    }

    fn region_of(&self, pc: Addr) -> Addr {
        pc & !(self.region_bytes - 1)
    }

    fn predict(
        kind: BranchKind,
        target: Addr,
        pc: Addr,
        oracle: &mut dyn PredictionProvider,
    ) -> (bool, Addr) {
        match kind {
            BranchKind::CondDirect => (oracle.predict_cond(pc), target),
            BranchKind::UncondDirect | BranchKind::DirectCall => (true, target),
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                (true, oracle.predict_indirect(pc).unwrap_or(target))
            }
            BranchKind::Return => (true, oracle.predict_return(pc).unwrap_or(target)),
        }
    }

    /// Plans from an L1 block entry (B-BTB semantics, level L1).
    fn plan_from_l1(
        &self,
        pc: Addr,
        entry: &BEntry,
        oracle: &mut dyn PredictionProvider,
    ) -> FetchPlan {
        let mut branches = Vec::new();
        for slot in &entry.slots {
            let slot_pc = pc + u64::from(slot.offset) * INST_BYTES;
            let (taken, target) = Self::predict(slot.kind, slot.target, slot_pc, oracle);
            if slot.kind.is_call() && taken {
                oracle.note_call(slot_pc + INST_BYTES);
            }
            branches.push(PlannedBranch {
                pc: slot_pc,
                kind: slot.kind,
                taken,
                target,
                level: BtbLevel::L1,
            });
            if taken {
                return FetchPlan {
                    access_pc: pc,
                    segments: vec![PlanSegment {
                        start: pc,
                        end: slot_pc + INST_BYTES,
                    }],
                    branches,
                    next_pc: target,
                    bubbles: bubbles_for(BtbLevel::L1, slot.kind, &self.config.timing),
                    end: PlanEnd::TakenBranch,
                    used_l2: false,
                };
            }
        }
        let reach = entry.reach(self.block_insts);
        let end = pc + reach * INST_BYTES;
        FetchPlan {
            access_pc: pc,
            segments: vec![PlanSegment { start: pc, end }],
            branches,
            next_pc: end,
            bubbles: 0,
            end: PlanEnd::WindowEnd,
            used_l2: false,
        }
    }

    /// Plans from the L2 region entries covering the block window (level
    /// L2: taken branches pay the L2 bubbles).
    fn plan_from_l2(&mut self, pc: Addr, oracle: &mut dyn PredictionProvider) -> FetchPlan {
        let window_end = pc + self.block_bytes();
        let mut branches = Vec::new();
        let mut any = false;
        let mut region = self.region_of(pc);
        while region < window_end {
            if let Some(idx) = self.l2.touch(region / self.region_bytes) {
                any = true;
                let entry = self.l2.at(idx);
                for slot in &entry.slots {
                    let slot_pc = region + u64::from(slot.offset) * INST_BYTES;
                    if slot_pc < pc || slot_pc >= window_end {
                        continue;
                    }
                    let (taken, target) = Self::predict(slot.kind, slot.target, slot_pc, oracle);
                    if slot.kind.is_call() && taken {
                        oracle.note_call(slot_pc + INST_BYTES);
                    }
                    branches.push(PlannedBranch {
                        pc: slot_pc,
                        kind: slot.kind,
                        taken,
                        target,
                        level: BtbLevel::L2,
                    });
                    if taken {
                        return FetchPlan {
                            access_pc: pc,
                            segments: vec![PlanSegment {
                                start: pc,
                                end: slot_pc + INST_BYTES,
                            }],
                            branches,
                            next_pc: target,
                            bubbles: bubbles_for(BtbLevel::L2, slot.kind, &self.config.timing),
                            end: PlanEnd::TakenBranch,
                            used_l2: true,
                        };
                    }
                }
            }
            region += self.region_bytes;
        }
        FetchPlan {
            access_pc: pc,
            segments: vec![PlanSegment {
                start: pc,
                end: window_end,
            }],
            branches,
            next_pc: window_end,
            bubbles: 0,
            end: PlanEnd::WindowEnd,
            used_l2: any,
        }
    }

    /// Follows L1 split chains to find the block containing `pc`.
    fn resolve_block(&self, mut start: Addr, pc: Addr) -> Addr {
        loop {
            if pc >= start + self.block_bytes() {
                start += self.block_bytes();
                continue;
            }
            if let Some(e) = self.l1.peek(start >> 2) {
                if let Some(len) = e.split_len {
                    let end = start + u64::from(len) * INST_BYTES;
                    if pc >= end {
                        start = end;
                        continue;
                    }
                }
            }
            return start;
        }
    }

    /// B-BTB-style L1 update for a taken branch in block `start`.
    fn update_l1(&mut self, start: Addr, rec: &TraceRecord, kind: BranchKind) {
        self.tick += 1;
        let tick = self.tick;
        let offset = ((rec.pc - start) / INST_BYTES) as u16;
        let target = rec.target;
        let max_slots = self.l1_slots;
        let split = self.split;
        let mut overflow: Option<(BSlot, u16)> = None;
        {
            let (e, _evicted) = self.l1.get_or_insert_with(start >> 2, BEntry::default);
            if let Some(s) = e.slots.iter_mut().find(|s| s.offset == offset) {
                s.kind = kind;
                s.target = target;
                s.last_use = tick;
            } else {
                let new = BSlot {
                    offset,
                    kind,
                    target,
                    last_use: tick,
                };
                let at = e.slots.partition_point(|s| s.offset < offset);
                if e.slots.len() < max_slots {
                    e.slots.insert(at, new);
                } else if split {
                    let mut staging = e.slots.clone();
                    staging.insert(at, new);
                    let moved = staging.pop().expect("n+1 slots");
                    let split_at = staging.last().expect("n >= 1").offset + 1;
                    e.slots = staging;
                    e.split_len = Some(split_at);
                    overflow = Some((moved, split_at));
                } else {
                    let victim = e
                        .slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.last_use)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    e.slots.remove(victim);
                    let at = e.slots.partition_point(|s| s.offset < offset);
                    e.slots.insert(at, new);
                }
            }
        }
        if let Some((moved, split_at)) = overflow {
            let succ = start + u64::from(split_at) * INST_BYTES;
            let rebased = BSlot {
                offset: moved.offset - split_at,
                ..moved
            };
            let (e, _evicted) = self.l1.get_or_insert_with(succ >> 2, BEntry::default);
            if !e.slots.iter().any(|s| s.offset == rebased.offset) && e.slots.len() < max_slots {
                let at = e.slots.partition_point(|s| s.offset < rebased.offset);
                e.slots.insert(at, rebased);
            }
        }
    }

    /// R-BTB-style L2 update for a taken branch.
    fn update_l2(&mut self, rec: &TraceRecord, kind: BranchKind) {
        self.tick += 1;
        let tick = self.tick;
        let region = self.region_of(rec.pc);
        let offset = ((rec.pc - region) / INST_BYTES) as u16;
        let target = rec.target;
        let max_slots = self.l2_slots;
        let (e, _evicted) = self
            .l2
            .get_or_insert_with(region / self.region_bytes, REntry::default);
        if let Some(s) = e.slots.iter_mut().find(|s| s.offset == offset) {
            s.kind = kind;
            s.target = target;
            s.last_use = tick;
            return;
        }
        let new = RSlot {
            offset,
            kind,
            target,
            last_use: tick,
        };
        if e.slots.len() >= max_slots {
            let victim = e
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(i, _)| i)
                .expect("non-empty");
            e.slots.remove(victim);
        }
        let at = e.slots.partition_point(|s| s.offset < offset);
        e.slots.insert(at, new);
    }
}

impl BtbOrganization for HeteroBtb {
    fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn clone_box(&self) -> Box<dyn BtbOrganization> {
        Box::new(self.clone())
    }

    fn plan(&mut self, pc: Addr, oracle: &mut dyn PredictionProvider) -> FetchPlan {
        // Index-based lookup so the entry can be borrowed (not cloned)
        // while `plan_from_l1` reads the rest of `self`.
        if let Some(idx) = self.l1.touch(pc >> 2) {
            return self.plan_from_l1(pc, self.l1.at(idx), oracle);
        }
        self.plan_from_l2(pc, oracle)
    }

    fn update(&mut self, rec: &TraceRecord) {
        let Some(kind) = rec.branch_kind() else {
            return;
        };
        let start = self.resolve_block(self.cur_block.unwrap_or(rec.pc).min(rec.pc), rec.pc);
        if rec.taken {
            self.update_l1(start, rec, kind);
            self.update_l2(rec, kind);
            self.cur_block = Some(rec.target);
        } else {
            self.cur_block = Some(start);
        }
    }

    fn probe_branch(&self, pc: Addr) -> Option<BranchProbe> {
        // B-style scan over the L1 block entries first (like `plan`), then
        // the R-style L2 region entry.
        for d in 0..self.block_insts as u64 {
            let Some(start) = pc.checked_sub(d * INST_BYTES) else {
                break;
            };
            if let Some(e) = self.l1.peek(start >> 2) {
                if let Some(slot) = e.slots.iter().find(|s| u64::from(s.offset) == d) {
                    return Some(BranchProbe {
                        level: BtbLevel::L1,
                        kind: slot.kind,
                        target: slot.target,
                    });
                }
            }
        }
        let region = self.region_of(pc);
        let offset = ((pc - region) / INST_BYTES) as u16;
        let e = self.l2.peek(region / self.region_bytes)?;
        let slot = e.slots.iter().find(|s| s.offset == offset)?;
        Some(BranchProbe {
            level: BtbLevel::L2,
            kind: slot.kind,
            target: slot.target,
        })
    }

    fn dump_state(&self) -> BtbState {
        BtbState {
            l1: LevelState {
                sets: self.l1.dump_with(fmt_bentry),
            },
            l2: Some(LevelState {
                sets: self.l2.dump_with(fmt_rentry),
            }),
            aux: Vec::new(),
        }
    }

    fn inspect(&self) -> BtbInspection {
        let mut l1_counts: HashMap<u64, u64> = HashMap::new();
        for (k, e) in self.l1.iter() {
            for slot in &e.slots {
                let pc = (k << 2) + u64::from(slot.offset) * INST_BYTES;
                *l1_counts.entry(pc).or_insert(0) += 1;
            }
        }
        let mut l2_counts: HashMap<u64, u64> = HashMap::new();
        for (k, e) in self.l2.iter() {
            for slot in &e.slots {
                let pc = k * self.region_bytes + u64::from(slot.offset) * INST_BYTES;
                *l2_counts.entry(pc).or_insert(0) += 1;
            }
        }
        BtbInspection {
            l1: LevelInspection::from_branch_map(
                self.l1.len(),
                self.l1.capacity(),
                self.l1_slots,
                &l1_counts,
            ),
            l2: LevelInspection::from_branch_map(
                self.l2.len(),
                self.l2.capacity(),
                self.l2_slots,
                &l2_counts,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LevelGeometry;
    use crate::plan::FixedOracle;

    fn hetero(l1_slots: usize, l2_slots: usize) -> HeteroBtb {
        HeteroBtb::new(BtbConfig {
            name: "hetero".into(),
            kind: OrgKind::HeteroBlockRegion {
                block_insts: 16,
                l1_slots,
                split: true,
                region_bytes: 64,
                l2_slots,
            },
            l1: LevelGeometry { sets: 4, ways: 2 },
            l2: Some(LevelGeometry { sets: 64, ways: 4 }),
            timing: Default::default(),
        })
    }

    fn taken(pc: Addr, kind: BranchKind, target: Addr) -> TraceRecord {
        TraceRecord::branch(pc, kind, true, target)
    }

    #[test]
    fn l1_hit_serves_block_plans() {
        let mut b = hetero(2, 2);
        b.update(&taken(0x1008, BranchKind::UncondDirect, 0x2000));
        let p = b.plan(0x1008, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x2000);
        assert!(!p.used_l2);
        assert_eq!(p.bubbles, 0, "L1 block hit is 0-cycle");
    }

    #[test]
    fn l2_regions_cover_l1_misses_with_bubbles() {
        let mut b = hetero(2, 2);
        // Train, then evict the block from the tiny L1 by thrashing with
        // aliasing block starts (same set: keys 4 sets apart in pc>>2).
        b.update(&taken(0x1008, BranchKind::UncondDirect, 0x2000));
        for i in 1..=2u64 {
            let alias = 0x1008 + i * 4 * 4 * 4; // same L1 set (4 sets × >>2)
            b.update(&taken(alias, BranchKind::UncondDirect, 0x2000));
        }
        assert!(b.l1.peek(0x1008 >> 2).is_none(), "L1 entry evicted");
        let p = b.plan(0x1008, &mut FixedOracle::default());
        assert!(p.used_l2, "L2 region must provide the metadata");
        assert_eq!(p.next_pc, 0x2000);
        assert_eq!(p.bubbles, 3, "L2-provided taken branch pays bubbles");
    }

    #[test]
    fn l2_never_stores_a_branch_twice() {
        // The §3.6.2 motivation: the region L2 is redundancy-free even when
        // the block L1 tracks the same branch under several block starts.
        let mut b = hetero(1, 4);
        // Two different entry paths into the same branch (Fig. 2 shape).
        b.update(&taken(0x0f00, BranchKind::UncondDirect, 0x1000));
        b.update(&taken(0x1020, BranchKind::CondDirect, 0x5000));
        b.update(&taken(0x5000, BranchKind::UncondDirect, 0x1010));
        b.update(&taken(0x1020, BranchKind::CondDirect, 0x5000));
        let ins = b.inspect();
        assert!(
            (ins.l2.redundancy() - 1.0).abs() < 1e-9,
            "region L2 is deduplicated"
        );
    }

    #[test]
    fn never_taken_allocates_nothing() {
        let mut b = hetero(2, 2);
        b.update(&TraceRecord::branch(
            0x1004,
            BranchKind::CondDirect,
            false,
            0x2000,
        ));
        let ins = b.inspect();
        assert_eq!(ins.l1.entries + ins.l2.entries, 0);
    }

    #[test]
    fn split_entries_work_in_the_l1() {
        let mut b = hetero(1, 4);
        b.update(&taken(0x1000, BranchKind::UncondDirect, 0x2000));
        b.update(&taken(0x2004, BranchKind::CondDirect, 0x3000));
        b.update(&taken(0x3000, BranchKind::UncondDirect, 0x2000));
        b.update(&TraceRecord::branch(
            0x2004,
            BranchKind::CondDirect,
            false,
            0x3000,
        ));
        b.update(&taken(0x2010, BranchKind::UncondDirect, 0x4000));
        let p = b.plan(0x2000, &mut FixedOracle::default());
        assert_eq!(p.next_pc, 0x2008, "split fall-through");
    }

    #[test]
    fn cold_miss_speculates_sequentially() {
        let mut b = hetero(2, 2);
        let p = b.plan(0x9000, &mut FixedOracle::default());
        assert_eq!(p.fetch_pcs(), 16);
        assert_eq!(p.next_pc, 0x9040);
        assert!(!p.used_l2);
    }
}
