//! Fetch plans: the product of one BTB access.
//!
//! A plan describes, for a single BTB access cycle, the sequential
//! instruction ranges the PC-generation stage enqueues into the FTQ, every
//! tracked branch it saw (with its prediction), where the *next* BTB access
//! will be made and how many bubbles separate the two accesses. The
//! simulator consumes plans against the trace, charging misfetch and
//! misprediction penalties where the plan and the actual path disagree.

use crate::config::BtbLevel;
use btb_trace::{Addr, BranchKind, INST_BYTES};

/// A branch the BTB access saw and predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBranch {
    /// Branch PC.
    pub pc: Addr,
    /// Branch kind stored in the BTB entry.
    pub kind: BranchKind,
    /// Predicted direction (always true for unconditional kinds).
    pub taken: bool,
    /// Predicted target when predicted taken (stored target for direct
    /// branches, predictor/RAS output for indirect kinds).
    pub target: Addr,
    /// Level of the entry that provided the branch.
    pub level: BtbLevel,
}

/// One contiguous range of fetch PCs produced by an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSegment {
    /// First instruction address (inclusive).
    pub start: Addr,
    /// End address (exclusive).
    pub end: Addr,
}

impl PlanSegment {
    /// Number of instruction PCs in the segment.
    #[must_use]
    pub fn num_insts(&self) -> u64 {
        (self.end.saturating_sub(self.start)) / INST_BYTES
    }

    /// Whether `pc` lies within the segment.
    #[must_use]
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.start && pc < self.end
    }
}

/// Why a plan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanEnd {
    /// A predicted-taken branch redirected fetch.
    TakenBranch,
    /// The access window was exhausted (sequential fall-through).
    WindowEnd,
}

/// The full product of one BTB access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchPlan {
    /// Address the access was made with.
    pub access_pc: Addr,
    /// Sequential fetch ranges in fetch order (multiple segments only for
    /// organizations that cross taken branches in one access: MB-BTB chains
    /// and the idealized I-BTB Skp).
    pub segments: Vec<PlanSegment>,
    /// Every tracked branch the access saw, in fetch order.
    pub branches: Vec<PlannedBranch>,
    /// Address of the next BTB access.
    pub next_pc: Addr,
    /// Bubbles between this access and the next (0 = back-to-back).
    pub bubbles: u32,
    /// Why the plan ended.
    pub end: PlanEnd,
    /// Whether any consulted entry came from the L2 (for hit statistics).
    pub used_l2: bool,
}

impl FetchPlan {
    /// A purely sequential plan covering `[pc, pc + insts*4)` with no branch
    /// knowledge (what a BTB miss produces: the frontend speculates
    /// sequentially).
    #[must_use]
    pub fn sequential(pc: Addr, insts: u64) -> Self {
        let end = pc + insts * INST_BYTES;
        FetchPlan {
            access_pc: pc,
            segments: vec![PlanSegment { start: pc, end }],
            branches: Vec::new(),
            next_pc: end,
            bubbles: 0,
            end: PlanEnd::WindowEnd,
            used_l2: false,
        }
    }

    /// Total fetch PCs the plan provides (the paper's "fetch PCs per BTB
    /// access" metric, Fig. 10).
    #[must_use]
    pub fn fetch_pcs(&self) -> u64 {
        self.segments.iter().map(PlanSegment::num_insts).sum()
    }

    /// The planned branch at `pc`, if the access saw one there.
    #[must_use]
    pub fn branch_at(&self, pc: Addr) -> Option<&PlannedBranch> {
        self.branches.iter().find(|b| b.pc == pc)
    }

    /// Validates internal consistency (segments ordered, branches inside
    /// segments). Used by tests and debug assertions.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("plan has no segments".into());
        }
        if self.segments[0].start != self.access_pc {
            return Err("first segment must start at the access pc".into());
        }
        for s in &self.segments {
            if s.end < s.start {
                return Err(format!("segment {s:?} is inverted"));
            }
        }
        for b in &self.branches {
            if !self.segments.iter().any(|s| s.contains(b.pc)) {
                return Err(format!("branch {:#x} outside all segments", b.pc));
            }
        }
        Ok(())
    }
}

/// Direction/target prediction services the plan builder consumes.
///
/// Implemented by the simulator around its live predictors; the trait lets
/// the BTB organizations stay independent of predictor implementations.
pub trait PredictionProvider {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict_cond(&mut self, pc: Addr) -> bool;
    /// Predicts the target of the non-return indirect branch at `pc`.
    fn predict_indirect(&mut self, pc: Addr) -> Option<Addr>;
    /// Predicts the return target at `pc`, accounting for calls earlier in
    /// the plan being built.
    fn predict_return(&mut self, pc: Addr) -> Option<Addr>;
    /// Informs the provider that the plan contains a call whose return
    /// address is `ret_addr` (keeps the speculative RAS coherent).
    fn note_call(&mut self, ret_addr: Addr);
}

/// A [`PredictionProvider`] with fixed answers, for unit tests.
#[derive(Debug, Clone, Default)]
pub struct FixedOracle {
    /// PCs predicted taken.
    pub taken: Vec<Addr>,
    /// Indirect target predictions.
    pub indirect: Vec<(Addr, Addr)>,
    /// Return target predictions (popped front to back).
    pub returns: Vec<Addr>,
    /// Calls noted by the plan builder.
    pub noted_calls: Vec<Addr>,
}

impl PredictionProvider for FixedOracle {
    fn predict_cond(&mut self, pc: Addr) -> bool {
        self.taken.contains(&pc)
    }

    fn predict_indirect(&mut self, pc: Addr) -> Option<Addr> {
        self.indirect
            .iter()
            .find(|(p, _)| *p == pc)
            .map(|(_, t)| *t)
    }

    fn predict_return(&mut self, _pc: Addr) -> Option<Addr> {
        if self.returns.is_empty() {
            None
        } else {
            Some(self.returns.remove(0))
        }
    }

    fn note_call(&mut self, ret_addr: Addr) {
        self.noted_calls.push(ret_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_plan_covers_requested_window() {
        let p = FetchPlan::sequential(0x1000, 16);
        assert_eq!(p.fetch_pcs(), 16);
        assert_eq!(p.next_pc, 0x1040);
        assert_eq!(p.bubbles, 0);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn branch_lookup_by_pc() {
        let mut p = FetchPlan::sequential(0x1000, 16);
        p.branches.push(PlannedBranch {
            pc: 0x1008,
            kind: BranchKind::CondDirect,
            taken: false,
            target: 0x2000,
            level: BtbLevel::L1,
        });
        assert!(p.branch_at(0x1008).is_some());
        assert!(p.branch_at(0x100c).is_none());
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_branch_outside_segments() {
        let mut p = FetchPlan::sequential(0x1000, 4);
        p.branches.push(PlannedBranch {
            pc: 0x2000,
            kind: BranchKind::CondDirect,
            taken: true,
            target: 0x3000,
            level: BtbLevel::L1,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn segment_containment() {
        let s = PlanSegment {
            start: 0x100,
            end: 0x110,
        };
        assert!(s.contains(0x100));
        assert!(s.contains(0x10c));
        assert!(!s.contains(0x110));
        assert_eq!(s.num_insts(), 4);
    }

    #[test]
    fn fixed_oracle_behaviour() {
        let mut o = FixedOracle {
            taken: vec![0x10],
            indirect: vec![(0x20, 0x9000)],
            returns: vec![0x30],
            noted_calls: vec![],
        };
        assert!(o.predict_cond(0x10));
        assert!(!o.predict_cond(0x14));
        assert_eq!(o.predict_indirect(0x20), Some(0x9000));
        assert_eq!(o.predict_return(0x0), Some(0x30));
        assert_eq!(o.predict_return(0x0), None);
        o.note_call(0x44);
        assert_eq!(o.noted_calls, vec![0x44]);
    }
}
