//! BTB content inspection: the occupancy and redundancy statistics the paper
//! samples every 1M instructions (§5).

use std::collections::HashMap;

/// Snapshot statistics of one BTB level's contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LevelInspection {
    /// Valid entries.
    pub entries: usize,
    /// Total entry capacity.
    pub capacity: usize,
    /// Branch slots currently holding a branch.
    pub used_slots: u64,
    /// Branch-slot capacity (entries × slots/entry).
    pub slot_capacity: u64,
    /// Number of distinct branch PCs tracked.
    pub distinct_branches: usize,
    /// Total (branch PC, entry) pairs — equals `distinct_branches` when
    /// there is no redundancy.
    pub tracked_pairs: u64,
}

impl LevelInspection {
    /// Average used branch slots per valid entry (paper §5: 1.60 for the
    /// 16-slot R-BTB, 1.06 for the 16-slot B-BTB).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.used_slots as f64 / self.entries as f64
        }
    }

    /// Average number of entries tracking each distinct branch PC (paper
    /// §5: 1.0 for I-/R-BTB, ~1.06 for B-BTB).
    #[must_use]
    pub fn redundancy(&self) -> f64 {
        if self.distinct_branches == 0 {
            0.0
        } else {
            self.tracked_pairs as f64 / self.distinct_branches as f64
        }
    }

    /// Builds a level inspection from a per-branch-PC entry count map.
    #[must_use]
    pub fn from_branch_map(
        entries: usize,
        capacity: usize,
        slot_capacity_per_entry: usize,
        branch_counts: &HashMap<u64, u64>,
    ) -> Self {
        LevelInspection {
            entries,
            capacity,
            used_slots: branch_counts.values().sum(),
            slot_capacity: (capacity * slot_capacity_per_entry) as u64,
            distinct_branches: branch_counts.len(),
            tracked_pairs: branch_counts.values().sum(),
        }
    }
}

/// Snapshot of a whole BTB hierarchy's contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BtbInspection {
    /// First level.
    pub l1: LevelInspection,
    /// Second level (all-zero when absent).
    pub l2: LevelInspection,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_and_redundancy() {
        let mut counts = HashMap::new();
        counts.insert(0x100u64, 2u64); // tracked by two entries
        counts.insert(0x200u64, 1u64);
        let li = LevelInspection::from_branch_map(2, 8, 2, &counts);
        assert_eq!(li.used_slots, 3);
        assert_eq!(li.distinct_branches, 2);
        assert!((li.redundancy() - 1.5).abs() < 1e-9);
        assert!((li.occupancy() - 1.5).abs() < 1e-9);
        assert_eq!(li.slot_capacity, 16);
    }

    #[test]
    fn empty_level_has_zero_stats() {
        let li = LevelInspection::default();
        assert_eq!(li.occupancy(), 0.0);
        assert_eq!(li.redundancy(), 0.0);
    }
}
