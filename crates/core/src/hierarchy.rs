//! A two-level BTB storage helper: L1 backed by an optional L2, with
//! fill-on-L2-hit and write-both updates (the paper models immediate updates
//! and zero fill latency, §4.1).

use crate::config::{BtbLevel, LevelGeometry};
use crate::probe::LevelState;
use crate::storage::SetAssoc;

/// Two levels of set-associative storage holding entries of type `E`.
#[derive(Debug, Clone)]
pub struct TwoLevel<E: Clone> {
    l1: SetAssoc<E>,
    l2: Option<SetAssoc<E>>,
}

impl<E: Clone> TwoLevel<E> {
    /// Creates the hierarchy from geometries.
    #[must_use]
    pub fn new(l1: LevelGeometry, l2: Option<LevelGeometry>) -> Self {
        TwoLevel {
            l1: SetAssoc::new(l1.sets, l1.ways),
            l2: l2.map(|g| SetAssoc::new(g.sets, g.ways)),
        }
    }

    /// Looks up `key`: L1 first, then L2. An L2 hit fills the entry into L1
    /// (zero fill latency). Returns a reference to the (L1-resident) entry
    /// and the level that provided it; the hot L1-hit path is clone-free.
    #[inline]
    pub fn lookup_fill(&mut self, key: u64) -> Option<(&E, BtbLevel)> {
        if let Some(idx) = self.l1.touch(key) {
            return Some((self.l1.at(idx), BtbLevel::L1));
        }
        let l2 = self.l2.as_mut()?;
        let l2_idx = l2.touch(key)?;
        let cloned = l2.at(l2_idx).clone();
        let (idx, _evicted) = self.l1.insert_idx(key, cloned);
        Some((self.l1.at(idx), BtbLevel::L2))
    }

    /// Looks up `key` without filling or touching recency.
    #[must_use]
    pub fn peek(&self, key: u64) -> Option<(&E, BtbLevel)> {
        if let Some(e) = self.l1.peek(key) {
            return Some((e, BtbLevel::L1));
        }
        if let Some(l2) = &self.l2 {
            if let Some(e) = l2.peek(key) {
                return Some((e, BtbLevel::L2));
            }
        }
        None
    }

    /// Applies `f` to the entry for `key` in every level, creating it with
    /// `default` where absent (immediate write-both update).
    pub fn update_with<D: Fn() -> E, F: FnMut(&mut E)>(&mut self, key: u64, default: D, mut f: F) {
        {
            let (e, _evicted) = self.l1.get_or_insert_with(key, &default);
            f(e);
        }
        if let Some(l2) = &mut self.l2 {
            let (e, _evicted) = l2.get_or_insert_with(key, &default);
            f(e);
        }
    }

    /// Applies `f` only to levels where `key` already exists; returns true
    /// if any level held the entry.
    pub fn modify_existing<F: FnMut(&mut E)>(&mut self, key: u64, mut f: F) -> bool {
        let mut any = false;
        if let Some(e) = self.l1.get_mut(key) {
            f(e);
            any = true;
        }
        if let Some(l2) = &mut self.l2 {
            if let Some(e) = l2.get_mut(key) {
                f(e);
                any = true;
            }
        }
        any
    }

    /// Writes `entry` to every level (read-modify-write updates that must
    /// keep levels consistent).
    pub fn write_both(&mut self, key: u64, entry: E) {
        if let Some(l2) = &mut self.l2 {
            l2.insert(key, entry.clone());
        }
        self.l1.insert(key, entry);
    }

    /// Reads the authoritative copy of `key`: the L2 entry when an L2
    /// exists (bigger, less thrashed), the L1 entry otherwise.
    #[must_use]
    pub fn peek_authoritative(&self, key: u64) -> Option<&E> {
        if let Some(l2) = &self.l2 {
            l2.peek(key)
        } else {
            self.l1.peek(key)
        }
    }

    /// Promotes `key` from the L2 into the L1 (BTB preloading, the IBM
    /// z-style bulk preload of §7.3's related work). No-op if the key is
    /// already in the L1 or absent from the L2.
    pub fn promote(&mut self, key: u64) {
        if self.l1.peek(key).is_some() {
            return;
        }
        let Some(l2) = &mut self.l2 else { return };
        if let Some(e) = l2.get(key) {
            let cloned = e.clone();
            self.l1.insert(key, cloned);
        }
    }

    /// Removes `key` from all levels.
    pub fn remove(&mut self, key: u64) {
        self.l1.remove(key);
        if let Some(l2) = &mut self.l2 {
            l2.remove(key);
        }
    }

    /// The L1 table (for inspection).
    #[must_use]
    pub fn l1(&self) -> &SetAssoc<E> {
        &self.l1
    }

    /// The L2 table, if present (for inspection).
    #[must_use]
    pub fn l2(&self) -> Option<&SetAssoc<E>> {
        self.l2.as_ref()
    }

    /// Canonical per-level dump (see [`SetAssoc::dump_with`]), formatting
    /// each entry with `f`.
    pub fn dump_levels<F: Fn(&E) -> String>(&self, f: F) -> (LevelState, Option<LevelState>) {
        (
            LevelState {
                sets: self.l1.dump_with(&f),
            },
            self.l2.as_ref().map(|l2| LevelState {
                sets: l2.dump_with(&f),
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(sets: usize, ways: usize) -> LevelGeometry {
        LevelGeometry { sets, ways }
    }

    #[test]
    fn l2_hit_fills_l1() {
        let mut h: TwoLevel<u32> = TwoLevel::new(geo(2, 1), Some(geo(4, 2)));
        // Place only in L2 by updating then evicting from L1.
        h.update_with(0, || 7, |_| {});
        h.update_with(2, || 8, |_| {}); // same L1 set (2 sets), evicts key 0 from L1
        assert!(h.l1.peek(0).is_none(), "key 0 evicted from tiny L1");
        let (v, level) = h.lookup_fill(0).expect("L2 retains it");
        assert_eq!((*v, level), (7, BtbLevel::L2));
        // Now it is back in L1.
        assert_eq!(h.peek(0).map(|(e, l)| (*e, l)), Some((7, BtbLevel::L1)));
    }

    #[test]
    fn update_writes_both_levels() {
        let mut h: TwoLevel<u32> = TwoLevel::new(geo(2, 2), Some(geo(2, 2)));
        h.update_with(5, || 0, |e| *e += 1);
        assert_eq!(h.l1.peek(5), Some(&1));
        assert_eq!(h.l2.as_ref().unwrap().peek(5), Some(&1));
    }

    #[test]
    fn single_level_hierarchy_works() {
        let mut h: TwoLevel<u32> = TwoLevel::new(geo(4, 2), None);
        h.update_with(9, || 3, |_| {});
        assert_eq!(h.lookup_fill(9), Some((&3, BtbLevel::L1)));
        assert_eq!(h.lookup_fill(10), None);
    }

    #[test]
    fn modify_existing_skips_absent() {
        let mut h: TwoLevel<u32> = TwoLevel::new(geo(4, 2), None);
        assert!(!h.modify_existing(1, |e| *e = 9));
        h.update_with(1, || 0, |_| {});
        assert!(h.modify_existing(1, |e| *e = 9));
        assert_eq!(h.l1.peek(1), Some(&9));
    }

    #[test]
    fn remove_clears_all_levels() {
        let mut h: TwoLevel<u32> = TwoLevel::new(geo(2, 2), Some(geo(2, 2)));
        h.update_with(3, || 1, |_| {});
        h.remove(3);
        assert!(h.peek(3).is_none());
    }
}
