//! Model-based property tests for the BTB organizations: arbitrary but
//! *control-flow-consistent* branch streams must keep every structural
//! invariant, and plans must stay within their organizational windows.

use btb_core::{build_btb, BtbConfig, FixedOracle, LevelGeometry, OrgKind, PullPolicy};
use btb_trace::{BranchKind, TraceRecord, INST_BYTES};
use proptest::prelude::*;

/// A compact encoding of a synthetic branch site.
#[derive(Debug, Clone, Copy)]
struct Site {
    // Generated for realism but superseded by the forward-walk placement
    // in `stream`; kept so site tuples stay self-describing.
    #[allow(dead_code)]
    pc: u64,
    kind: BranchKind,
    target: u64,
}

/// Builds a consistent retire stream from a random walk over random sites:
/// after a taken branch, the next site's pc is >= the target (sequential
/// flow forward), which is what real traces guarantee.
fn stream(sites: &[Site], picks: &[u8], not_taken_bias: &[bool]) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    let mut pos = 0x1000u64;
    for (i, &p) in picks.iter().enumerate() {
        let site = sites[(p as usize) % sites.len()];
        // Place the branch at or after the current position on a forward
        // walk so sequential flow is plausible.
        let pc = pos + u64::from(p % 16) * INST_BYTES;
        let taken = site.kind != BranchKind::CondDirect || !not_taken_bias[i];
        out.push(TraceRecord::branch(pc, site.kind, taken, site.target));
        pos = if taken { site.target } else { pc + INST_BYTES };
    }
    out
}

fn arb_sites() -> impl Strategy<Value = Vec<Site>> {
    proptest::collection::vec(
        (0u64..64, 0usize..5, 0u64..64).prop_map(|(pc_idx, kind_idx, tgt_idx)| {
            let kinds = [
                BranchKind::CondDirect,
                BranchKind::UncondDirect,
                BranchKind::DirectCall,
                BranchKind::IndirectJump,
                BranchKind::Return,
            ];
            Site {
                pc: 0x1000 + pc_idx * 0x20,
                kind: kinds[kind_idx],
                target: 0x1000 + tgt_idx * 0x40,
            }
        }),
        4..24,
    )
}

fn orgs_under_test() -> Vec<BtbConfig> {
    let tiny = |name: &str, kind| BtbConfig {
        name: name.to_owned(),
        kind,
        l1: LevelGeometry { sets: 8, ways: 2 },
        l2: Some(LevelGeometry { sets: 32, ways: 2 }),
        timing: Default::default(),
    };
    vec![
        tiny(
            "i",
            OrgKind::Instruction {
                width: 16,
                skip_taken: false,
            },
        ),
        tiny(
            "r",
            OrgKind::Region {
                region_bytes: 64,
                slots: 2,
                dual_interleave: true,
            },
        ),
        tiny(
            "b",
            OrgKind::Block {
                block_insts: 16,
                slots: 1,
                split: true,
            },
        ),
        tiny(
            "mb",
            OrgKind::MultiBlock {
                block_insts: 16,
                slots: 2,
                pull: PullPolicy::AllBranches,
                stability_threshold: 2,
                allow_last_slot_pull: false,
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any branch stream, plans from any address remain valid, make
    /// forward progress and stay within sane windows.
    #[test]
    fn plans_always_valid_after_random_training(
        sites in arb_sites(),
        picks in proptest::collection::vec(any::<u8>(), 10..300),
        nt in proptest::collection::vec(any::<bool>(), 300),
        probe in 0u64..128,
    ) {
        let records = stream(&sites, &picks, &nt);
        for cfg in orgs_under_test() {
            let mut btb = build_btb(cfg);
            for r in &records {
                btb.update(r);
            }
            let pc = 0x1000 + probe * INST_BYTES;
            let mut oracle = FixedOracle::default();
            let plan = btb.plan(pc, &mut oracle);
            prop_assert_eq!(plan.validate(), Ok(()), "{}", btb.name());
            prop_assert!(plan.fetch_pcs() >= 1);
            // Every planned branch is inside some segment and all segments
            // are bounded (no runaway windows).
            for seg in &plan.segments {
                prop_assert!(seg.num_insts() <= 64 * 4, "window too large");
            }
        }
    }

    /// I-BTB and R-BTB never cache a branch in more than one entry (§3.4).
    #[test]
    fn ibtb_and_rbtb_are_never_redundant(
        sites in arb_sites(),
        picks in proptest::collection::vec(any::<u8>(), 10..300),
        nt in proptest::collection::vec(any::<bool>(), 300),
    ) {
        let records = stream(&sites, &picks, &nt);
        for cfg in orgs_under_test().into_iter().take(2) {
            let mut btb = build_btb(cfg);
            for r in &records {
                btb.update(r);
            }
            let ins = btb.inspect();
            if ins.l1.distinct_branches > 0 {
                prop_assert!((ins.l1.redundancy() - 1.0).abs() < 1e-9, "{}", btb.name());
            }
            if ins.l2.distinct_branches > 0 {
                prop_assert!((ins.l2.redundancy() - 1.0).abs() < 1e-9);
            }
        }
    }

    /// Slot capacity is respected by every organization at every level.
    #[test]
    fn slot_capacity_is_never_exceeded(
        sites in arb_sites(),
        picks in proptest::collection::vec(any::<u8>(), 10..300),
        nt in proptest::collection::vec(any::<bool>(), 300),
    ) {
        let records = stream(&sites, &picks, &nt);
        for cfg in orgs_under_test() {
            let slots = cfg.kind.slots() as f64;
            let mut btb = build_btb(cfg);
            for r in &records {
                btb.update(r);
            }
            let ins = btb.inspect();
            prop_assert!(
                ins.l1.occupancy() <= slots + 1e-9,
                "{}: occupancy {} > {}",
                btb.name(),
                ins.l1.occupancy(),
                slots
            );
        }
    }

    /// Never-taken streams allocate nothing, in any organization (§2).
    #[test]
    fn never_taken_conditionals_allocate_nothing(
        pcs in proptest::collection::vec(0u64..1024, 1..100),
    ) {
        for cfg in orgs_under_test() {
            let mut btb = build_btb(cfg);
            for &p in &pcs {
                btb.update(&TraceRecord::branch(
                    0x1000 + p * 4,
                    BranchKind::CondDirect,
                    false,
                    0x9000,
                ));
            }
            let ins = btb.inspect();
            prop_assert_eq!(ins.l1.entries, 0, "{}", btb.name());
            prop_assert_eq!(ins.l2.entries, 0);
        }
    }
}
