//! Cross-organization semantic tests: level attribution, timing fields and
//! plan-shape guarantees the simulator depends on.

use btb_core::{
    build_btb, BtbConfig, BtbLevel, FixedOracle, LevelGeometry, OrgKind, PlanEnd, PullPolicy,
};
use btb_trace::{BranchKind, TraceRecord};

fn tiny_two_level(kind: OrgKind) -> BtbConfig {
    BtbConfig {
        name: "tiny".into(),
        kind,
        l1: LevelGeometry { sets: 1, ways: 1 },
        l2: Some(LevelGeometry { sets: 64, ways: 4 }),
        timing: Default::default(),
    }
}

fn taken(pc: u64, kind: BranchKind, target: u64) -> TraceRecord {
    TraceRecord::branch(pc, kind, true, target)
}

/// Every organization with a thrashed single-entry L1 must attribute plans
/// to the L2 and charge 3 bubbles for L2-provided taken branches.
#[test]
fn l2_attribution_is_uniform_across_organizations() {
    // For the MB-BTB a `Return` terminator is used: it is never eligible to
    // pull, so the entry ends at the branch like the other organizations.
    let kinds: Vec<(OrgKind, BranchKind)> = vec![
        (
            OrgKind::Instruction {
                width: 16,
                skip_taken: false,
            },
            BranchKind::UncondDirect,
        ),
        (
            OrgKind::Region {
                region_bytes: 64,
                slots: 2,
                dual_interleave: false,
            },
            BranchKind::UncondDirect,
        ),
        (
            OrgKind::Block {
                block_insts: 16,
                slots: 2,
                split: false,
            },
            BranchKind::UncondDirect,
        ),
        (
            OrgKind::MultiBlock {
                block_insts: 16,
                slots: 2,
                pull: PullPolicy::UncondDirect,
                stability_threshold: 63,
                allow_last_slot_pull: false,
            },
            BranchKind::Return,
        ),
    ];
    for (kind, bk) in kinds {
        let pc = 0x1000u64;
        let mut btb = build_btb(tiny_two_level(kind));
        // Train the branch, then thrash the 1-entry L1 with an alias that
        // maps to the same (only) set.
        btb.update(&taken(pc, bk, 0x2000));
        btb.update(&taken(0x5000, BranchKind::UncondDirect, 0x6000));
        let plan = btb.plan(pc, &mut FixedOracle::default());
        assert!(
            plan.used_l2,
            "{kind:?}: plan should come from the L2 after L1 eviction"
        );
        assert_eq!(plan.next_pc, 0x2000, "{kind:?}");
        assert_eq!(plan.bubbles, 3, "{kind:?}: L2 taken branch costs 3 bubbles");
        let b = plan.branch_at(pc).expect("branch visible");
        assert_eq!(b.level, BtbLevel::L2);
        // A second access hits the freshly filled L1 at 0 bubbles.
        let plan2 = btb.plan(pc, &mut FixedOracle::default());
        assert_eq!(plan2.bubbles, 0, "{kind:?}: fill-on-lookup restores L1");
    }
}

/// Custom timing parameters flow through to plan bubbles.
#[test]
fn custom_timing_is_respected() {
    let mut cfg = tiny_two_level(OrgKind::Instruction {
        width: 16,
        skip_taken: false,
    });
    cfg.timing.l2_bubbles = 7;
    cfg.timing.indirect_extra = 2;
    let mut btb = build_btb(cfg);
    btb.update(&taken(0x1000, BranchKind::IndirectJump, 0x2000));
    btb.update(&taken(0x5000, BranchKind::UncondDirect, 0x6000)); // evict
    let plan = btb.plan(0x1000, &mut FixedOracle::default());
    assert_eq!(plan.bubbles, 9, "7 L2 bubbles + 2 indirect extra");
}

/// Cold plans of every organization are pure sequential windows ending in
/// `WindowEnd` with no branches.
#[test]
fn cold_plans_are_sequential_windows() {
    let kinds = [
        OrgKind::Instruction {
            width: 8,
            skip_taken: false,
        },
        OrgKind::Region {
            region_bytes: 128,
            slots: 3,
            dual_interleave: true,
        },
        OrgKind::Block {
            block_insts: 32,
            slots: 1,
            split: true,
        },
        OrgKind::MultiBlock {
            block_insts: 16,
            slots: 3,
            pull: PullPolicy::AllBranches,
            stability_threshold: 63,
            allow_last_slot_pull: false,
        },
        OrgKind::RegionOverflow {
            region_bytes: 64,
            slots: 2,
            overflow_entries: 128,
        },
        OrgKind::HeteroBlockRegion {
            block_insts: 16,
            l1_slots: 1,
            split: true,
            region_bytes: 64,
            l2_slots: 2,
        },
    ];
    for kind in kinds {
        let mut btb = build_btb(tiny_two_level(kind));
        let plan = btb.plan(0x4_0000, &mut FixedOracle::default());
        assert_eq!(plan.end, PlanEnd::WindowEnd, "{kind:?}");
        assert!(plan.branches.is_empty(), "{kind:?}");
        assert_eq!(plan.bubbles, 0, "{kind:?}");
        assert!(plan.fetch_pcs() >= 1, "{kind:?}");
        assert_eq!(plan.validate(), Ok(()), "{kind:?}");
    }
}

/// The same training stream always yields the same plans (organizations are
/// deterministic state machines).
#[test]
fn organizations_are_deterministic() {
    let kind = OrgKind::MultiBlock {
        block_insts: 16,
        slots: 2,
        pull: PullPolicy::AllBranches,
        stability_threshold: 2,
        allow_last_slot_pull: false,
    };
    let stream: Vec<TraceRecord> = (0..200u64)
        .map(|i| {
            let pc = 0x1000 + (i % 7) * 0x40 + (i % 3) * 8;
            taken(pc, BranchKind::UncondDirect, 0x1000 + ((i + 1) % 7) * 0x40)
        })
        .collect();
    let run = || {
        let mut btb = build_btb(tiny_two_level(kind));
        for r in &stream {
            btb.update(r);
        }
        btb.plan(0x1000, &mut FixedOracle::default())
    };
    assert_eq!(run(), run());
}

/// Region organizations never emit branches below the access PC (§3.6.1
/// offset comparison) — checked across unaligned access offsets.
#[test]
fn region_offset_comparison_all_offsets() {
    let mut btb = build_btb(BtbConfig::ideal(
        "r",
        OrgKind::Region {
            region_bytes: 64,
            slots: 4,
            dual_interleave: false,
        },
    ));
    for off in [0u64, 2, 5, 9, 13] {
        btb.update(&taken(0x1000 + off * 4, BranchKind::CondDirect, 0x9000));
    }
    for access_off in 0..16u64 {
        let pc = 0x1000 + access_off * 4;
        let plan = btb.plan(pc, &mut FixedOracle::default());
        for b in &plan.branches {
            assert!(b.pc >= pc, "access {pc:#x} leaked branch {:#x}", b.pc);
        }
    }
}

/// The idealistic Skp variant provides exactly `width` fetch PCs when the
/// BTB knows every branch, regardless of how many are taken.
#[test]
fn skp_always_fills_its_width() {
    let mut btb = build_btb(BtbConfig::ideal(
        "skp",
        OrgKind::Instruction {
            width: 16,
            skip_taken: true,
        },
    ));
    // A chain of one-instruction blocks: every instruction is a taken jump.
    for i in 0..32u64 {
        btb.update(&taken(
            0x1000 + i * 4,
            BranchKind::UncondDirect,
            0x1000 + (i + 1) * 4,
        ));
    }
    let plan = btb.plan(0x1000, &mut FixedOracle::default());
    assert_eq!(plan.fetch_pcs(), 16);
    assert_eq!(plan.segments.len(), 16, "each jump opens a new segment");
}
