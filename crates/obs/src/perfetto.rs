//! Chrome trace-event (JSON) export, the format `chrome://tracing` and
//! <https://ui.perfetto.dev> open directly.
//!
//! Output contract:
//!
//! * **Timestamps are cycles.** The trace-event `ts`/`dur` fields are
//!   nominally microseconds; we write raw cycle numbers and record
//!   `"clock_domain": "cycles"` in `otherData`, so "1 µs" in the UI reads
//!   as "1 cycle". Wall-clock never appears — that is what makes a trace
//!   byte-deterministic across machines and thread counts.
//! * **Deterministic bytes.** Events are emitted in recording order, one
//!   per line, with a fixed key order and integer-only numbers. The same
//!   run produces the same file, byte for byte.
//! * **Explicit truncation.** A buffer that dropped events exports
//!   `"dropped_events" > 0`; consumers can tell a truncated trace from a
//!   complete one.
//!
//! Each [`TraceBuffer`] track becomes a trace "thread" (`tid` = track
//! index) named via `"M"` metadata events; the whole buffer is one
//! process (`pid` 1) named after the run.

use crate::span::WallSpan;
use crate::trace::{TraceBuffer, TraceEvent};
use std::fmt::Write as _;

/// Process id used for the single simulated process.
const PID: u32 = 1;

/// Process id used for the wall-clock span process in merged exports —
/// wall time and cycles share a file but never a timeline lane.
pub(crate) const WALL_PID: u32 = 2;

/// Escapes `s` into `out` as a JSON string literal.
///
/// Mirrors `btb_store::json`'s emitter exactly (`\n`/`\r`/`\t`, other
/// control chars as `\u00xx`, supplementary-plane chars as UTF-16
/// surrogate pairs) so every file this module writes re-parses with
/// `btb_store::JsonValue::parse` — pinned by the round-trip test.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c if (c as u32) > 0xffff => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes `buf` to a Chrome trace-event JSON document.
///
/// `process_name` labels the single trace process (shown as the group
/// header in the UI) — conventionally `"<config> / <workload>"`.
#[must_use]
pub fn chrome_trace_json(buf: &TraceBuffer, process_name: &str) -> String {
    // Generous pre-size: metadata + ~96 bytes per event.
    let mut out = String::with_capacity(256 + buf.tracks().len() * 80 + buf.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    write_cycle_events(&mut out, buf, process_name, &mut first);
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock_domain\":\"cycles\",\"dropped_events\":{}}}}}\n",
        buf.dropped()
    );
    out
}

/// Serializes `buf` plus wall-clock `wall` spans into one Chrome
/// trace-event document: cycle tracks under pid 1 (as in
/// [`chrome_trace_json`]), wall spans under pid 2 on per-thread lanes,
/// correlated by the `request` id each wall event carries in `args`.
/// The two domains share a file, not a clock — `otherData` names both.
#[must_use]
pub fn chrome_trace_json_with_wall(
    buf: &TraceBuffer,
    process_name: &str,
    wall: &[WallSpan],
    wall_dropped: u64,
) -> String {
    let mut out =
        String::with_capacity(256 + buf.tracks().len() * 80 + buf.len() * 96 + wall.len() * 160);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    write_cycle_events(&mut out, buf, process_name, &mut first);
    crate::span::write_wall_events(&mut out, wall, process_name, WALL_PID, &mut first);
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock_domain\":\"cycles\",\"dropped_events\":{},\
         \"wall_clock_domain\":\"wall-us\",\"wall_spans\":{},\"wall_dropped_spans\":{wall_dropped}}}}}\n",
        buf.dropped(),
        wall.len()
    );
    out
}

/// Emits `buf`'s metadata + events into an in-progress `traceEvents`
/// array (the shared body of the two exporters above).
fn write_cycle_events(out: &mut String, buf: &TraceBuffer, process_name: &str, first: &mut bool) {
    // Metadata first: name the process, then each track as a "thread".
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    push_sep(out, first);
    out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":");
    write_escaped(out, process_name);
    out.push_str("}}");

    for (i, track) in buf.tracks().iter().enumerate() {
        push_sep(out, first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":"
        );
        write_escaped(out, track);
        out.push_str("}}");
        // Keep UI track order equal to registration order.
        push_sep(out, first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{i},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{i}}}}}"
        );
    }

    for ev in buf.events() {
        push_sep(out, first);
        match ev {
            TraceEvent::Span {
                track,
                name,
                start,
                dur,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"name\":",
                    track.0
                );
                write_escaped(out, name);
                let _ = write!(out, ",\"ts\":{start},\"dur\":{dur}}}");
            }
            TraceEvent::Instant { track, name, cycle } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"name\":",
                    track.0
                );
                write_escaped(out, name);
                let _ = write!(out, ",\"ts\":{cycle},\"s\":\"t\"}}");
            }
            TraceEvent::Counter {
                track,
                name,
                cycle,
                value,
            } => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{},\"name\":",
                    track.0
                );
                write_escaped(out, name);
                let _ = write!(out, ",\"ts\":{cycle},\"args\":{{\"value\":{value}}}}}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_expected_shape() {
        let mut b = TraceBuffer::unbounded();
        let t = b.track("frontend");
        b.span(t, "resteer.misfetch", 100, 12);
        b.counter(t, "ftq.occupancy", 50, 9);
        b.instant(t, "warmup_end", 60);
        let json = chrome_trace_json(&b, "cfg / wl");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100,\"dur\":12"));
        assert!(json.contains("\"args\":{\"value\":9}"));
        assert!(json.contains("\"clock_domain\":\"cycles\""));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn identical_buffers_serialize_identically() {
        let build = || {
            let mut b = TraceBuffer::unbounded();
            let t = b.track("backend");
            b.span(t, "rob.stall", 7, 3);
            b
        };
        assert_eq!(
            chrome_trace_json(&build(), "p"),
            chrome_trace_json(&build(), "p")
        );
    }

    #[test]
    fn dropped_events_are_surfaced() {
        let mut b = TraceBuffer::new(1);
        let t = b.track("x");
        b.instant(t, "a", 1);
        b.instant(t, "b", 2);
        let json = chrome_trace_json(&b, "p");
        assert!(json.contains("\"dropped_events\":1"));
    }

    #[test]
    fn merged_export_keeps_cycle_prefix_and_adds_wall_process() {
        let mut b = TraceBuffer::unbounded();
        let t = b.track("frontend");
        b.span(t, "resteer.misfetch", 100, 12);
        let wall = [WallSpan {
            id: 9,
            parent: 0,
            request: 0x2a,
            thread: 1,
            name: "cell.run",
            start_us: 5,
            dur_us: 40,
        }];
        let merged = chrome_trace_json_with_wall(&b, "cfg / wl", &wall, 3);
        let plain = chrome_trace_json(&b, "cfg / wl");
        // The cycle-domain body is emitted unchanged before the wall part.
        let cycle_body = plain
            .strip_suffix(
                "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock_domain\":\"cycles\",\"dropped_events\":0}}\n",
            )
            .unwrap();
        assert!(merged.starts_with(cycle_body));
        assert!(merged.contains("(wall clock)"));
        assert!(merged.contains("\"request\":\"000000000000002a\""));
        assert!(merged.contains("\"wall_dropped_spans\":3"));
        assert!(merged.contains("\"wall_spans\":1"));
        assert!(merged.contains("\"clock_domain\":\"cycles\""));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = TraceBuffer::unbounded();
        b.track("tab\there \u{1f600}");
        let json = chrome_trace_json(&b, "quote\"backslash\\");
        assert!(json.contains("quote\\\"backslash\\\\"));
        assert!(json.contains("tab\\there \\ud83d\\ude00"));
    }
}
