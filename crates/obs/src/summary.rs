//! Human-readable rendering of a metrics [`Snapshot`](crate::Snapshot):
//! the `--metrics` terminal view.
//!
//! One metric per line, name column width computed from the snapshot, in
//! snapshot (registration / submission-merge) order — so the table is as
//! deterministic as the snapshot it renders. Gauge statistics print with
//! a fixed precision; this output is for eyes, not for diffing against
//! the JSON exports.

use crate::metrics::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Renders `snap` as an aligned table titled `title`. Returns `""` for an
/// empty snapshot so callers can print the result unconditionally.
#[must_use]
pub fn render_summary(snap: &Snapshot, title: &str) -> String {
    if snap.is_empty() {
        return String::new();
    }
    let width = snap
        .entries
        .iter()
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(out, "metrics: {title}");
    for (key, val) in &snap.entries {
        match val {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "  {key:<width$}  {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "  {key:<width$}  last {:.4}  mean {:.4}  min {:.4}  max {:.4}  (n={})",
                    g.last,
                    g.mean(),
                    g.min,
                    g.max,
                    g.samples
                );
            }
            MetricValue::Histogram(h) => {
                // p50/p90/p99 are bucket-interpolated estimates (error
                // bounded by the containing bucket's width, see
                // `HistogramValue::quantile`).
                let _ = write!(
                    out,
                    "  {key:<width$}  n={} sum={} mean={:.2} min={} max={} p50~{} p90~{} p99~{}  [",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.min,
                    h.max,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99)
                );
                for (i, c) in h.counts.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    if i < h.bounds.len() {
                        let _ = write!(out, "<={}:{c}", h.bounds[i]);
                    } else {
                        let _ = write!(out, ">{}:{c}", h.bounds[h.bounds.len() - 1]);
                    }
                }
                out.push_str("]\n");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_every_kind() {
        let mut r = Registry::new();
        let c = r.counter("sim.instructions");
        let g = r.gauge("ftq.occupancy");
        let h = r.histogram("bundle.records", &[4, 8]);
        r.add(c, 42);
        r.set(g, 0.5);
        r.record(h, 3);
        r.record(h, 9);
        let s = render_summary(&r.snapshot(), "demo");
        assert!(s.starts_with("metrics: demo\n"));
        assert!(s.contains("sim.instructions"));
        assert!(s.contains("42"));
        assert!(s.contains("last 0.5000"));
        assert!(s.contains("[<=4:1 <=8:0 >8:1]"));
        // Two samples (3, 9): p50 interpolates in the first bucket,
        // p99 lands in the overflow bucket and reports the max.
        assert!(s.contains("p50~"));
        assert!(s.contains("p99~9"), "overflow quantile is the max: {s}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_summary(&Snapshot::default(), "x"), "");
    }
}
