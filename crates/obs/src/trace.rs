//! Cycle-domain structured trace events.
//!
//! A [`TraceBuffer`] collects three event shapes on named tracks:
//! duration **spans** (`[start, start+dur)`), point **instants**, and
//! **counter** samples. Every timestamp is a simulator cycle — wall-clock
//! time never enters the buffer, so a trace of a deterministic run is
//! itself deterministic, byte for byte, at any `btb-par` thread count.
//!
//! Event names are `&'static str` by design: the producers (the sim's
//! instrumentation hooks) name a fixed vocabulary of spans (penalty
//! classes, stall kinds), and forcing statics keeps the recording path
//! allocation-free. Tracks are registered up front and carry owned names
//! because they may embed run-specific context (config / workload).
//!
//! Capacity is bounded: past `max_events`, new events are counted in
//! [`TraceBuffer::dropped`] instead of pushed, and the exporter surfaces
//! that count — a truncated trace must never read as a complete one.

/// Handle for a registered track (a horizontal lane in the trace UI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) u32);

/// One structured trace event. All times are cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A duration event covering `[start, start + dur)`.
    Span {
        /// Track the span renders on.
        track: TrackId,
        /// Span label (fixed vocabulary, e.g. a penalty class).
        name: &'static str,
        /// First cycle covered.
        start: u64,
        /// Length in cycles (0 renders as an infinitesimal slice).
        dur: u64,
    },
    /// A point-in-time marker.
    Instant {
        /// Track the marker renders on.
        track: TrackId,
        /// Marker label.
        name: &'static str,
        /// Cycle the marker lands on.
        cycle: u64,
    },
    /// A sampled counter value (renders as a step line).
    Counter {
        /// Track the series belongs to.
        track: TrackId,
        /// Series name.
        name: &'static str,
        /// Sample cycle.
        cycle: u64,
        /// Sample value. Integer on purpose: floating-point formatting is
        /// a determinism hazard the trace domain doesn't need.
        value: u64,
    },
}

impl TraceEvent {
    /// The track this event belongs to.
    #[must_use]
    pub fn track(&self) -> TrackId {
        match self {
            TraceEvent::Span { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Counter { track, .. } => *track,
        }
    }
}

/// An append-only, capacity-bounded buffer of [`TraceEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    tracks: Vec<String>,
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer that keeps at most `max_events` events
    /// (`0` is normalized to 1; use [`TraceBuffer::unbounded`] for tests).
    #[must_use]
    pub fn new(max_events: usize) -> Self {
        TraceBuffer {
            tracks: Vec::new(),
            events: Vec::new(),
            max_events: max_events.max(1),
            dropped: 0,
        }
    }

    /// Creates a buffer with no practical event cap.
    #[must_use]
    pub fn unbounded() -> Self {
        TraceBuffer::new(usize::MAX)
    }

    /// Registers a track and returns its handle. Track order is
    /// registration order and is preserved by the exporter.
    pub fn track(&mut self, name: &str) -> TrackId {
        let id = TrackId(u32::try_from(self.tracks.len()).expect("< 2^32 tracks"));
        self.tracks.push(name.to_string());
        id
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// Records a span covering `[start, start + dur)`.
    pub fn span(&mut self, track: TrackId, name: &'static str, start: u64, dur: u64) {
        self.push(TraceEvent::Span {
            track,
            name,
            start,
            dur,
        });
    }

    /// Records a point-in-time marker.
    pub fn instant(&mut self, track: TrackId, name: &'static str, cycle: u64) {
        self.push(TraceEvent::Instant { track, name, cycle });
    }

    /// Records a counter sample.
    pub fn counter(&mut self, track: TrackId, name: &'static str, cycle: u64, value: u64) {
        self.push(TraceEvent::Counter {
            track,
            name,
            cycle,
            value,
        });
    }

    /// Registered track names in registration order.
    #[must_use]
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// Recorded events in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events rejected because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-track recorded-event counts, `(track name, count)` in track
    /// registration order. Deterministic for a deterministic run, so the
    /// counts are safe to surface in byte-diffed metrics snapshots —
    /// which is how truncated traces become visible instead of silent.
    #[must_use]
    pub fn track_event_counts(&self) -> Vec<(&str, u64)> {
        let mut counts = vec![0u64; self.tracks.len()];
        for ev in &self.events {
            let TrackId(ix) = ev.track();
            if let Some(c) = counts.get_mut(ix as usize) {
                *c += 1;
            }
        }
        self.tracks.iter().map(String::as_str).zip(counts).collect()
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut b = TraceBuffer::unbounded();
        let t = b.track("frontend");
        b.span(t, "resteer", 10, 5);
        b.instant(t, "mark", 12);
        b.counter(t, "ftq", 13, 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.tracks(), &["frontend".to_string()]);
        assert!(matches!(
            b.events()[0],
            TraceEvent::Span {
                start: 10,
                dur: 5,
                ..
            }
        ));
    }

    #[test]
    fn cap_counts_drops_instead_of_growing() {
        let mut b = TraceBuffer::new(2);
        let t = b.track("x");
        for c in 0..5 {
            b.instant(t, "e", c);
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn track_event_counts_follow_registration_order() {
        let mut b = TraceBuffer::unbounded();
        let a = b.track("alpha");
        let z = b.track("zeta");
        b.instant(z, "e", 1);
        b.span(a, "s", 0, 2);
        b.counter(z, "c", 3, 9);
        assert_eq!(b.track_event_counts(), vec![("alpha", 1), ("zeta", 2)]);
    }
}
