//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Keys are `&'static str` interned on first registration to a dense
//! integer handle ([`CounterId`] / [`GaugeId`] / [`HistogramId`]); the
//! recording path (`add` / `set` / `record`) is then a bounds-checked
//! array index — no hashing, no allocation. Handles are only meaningful
//! for the registry that minted them; cross-run identity comes from the
//! *names*, which is why [`Snapshot`] stores names and [`Snapshot::merge`]
//! matches on them. Never persist or compare the numeric ids.
//!
//! ## Determinism contract
//!
//! Merging is *commutative per key* (counter add, histogram bucketwise
//! add, gauge sample-union), so a fleet of per-cell snapshots folds to the
//! same values in any order. Key *ordering* in the merged snapshot follows
//! first-appearance, so callers that need byte-identical output across
//! `btb-par` thread counts must fold snapshots in **submission order**
//! (exactly what `ordered_map`'s ordered results give for free).

use std::collections::HashMap;

/// Handle for a registered counter (monotonic `u64` sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Handle for a registered gauge (sampled `f64` level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(usize);

/// Handle for a registered fixed-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(usize);

/// Aggregate of every `f64` sample a gauge has observed.
///
/// A gauge is a *level* (FTQ occupancy, hit rate): the interesting
/// statistics are last/mean/min/max, and merging two gauges unions their
/// sample sets. `last` is taken from the operand with the later sample in
/// merge order, making "last" well-defined only under ordered folds; the
/// other four fields are fully commutative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeValue {
    /// Most recently observed sample.
    pub last: f64,
    /// Sum of all samples (for [`GaugeValue::mean`]).
    pub sum: f64,
    /// Number of samples observed.
    pub samples: u64,
    /// Smallest sample observed.
    pub min: f64,
    /// Largest sample observed.
    pub max: f64,
}

impl GaugeValue {
    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        if self.samples == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.last = v;
        self.sum += v;
        self.samples += 1;
    }

    /// Mean of all samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Unions another gauge's samples into this one.
    pub fn merge(&mut self, other: &GaugeValue) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.samples += other.samples;
        self.last = other.last;
    }
}

/// A fixed-bucket histogram of `u64` samples.
///
/// Bucket `i` counts samples `<= bounds[i]` (and greater than the previous
/// bound); the final bucket counts everything above the last bound. Bounds
/// are fixed at registration, which is what makes two histograms of the
/// same metric mergeable bucketwise — there is no re-bucketing and no
/// approximation in the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramValue {
    /// Inclusive upper bound of each finite bucket, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the
    /// last slot being the overflow bucket (`> bounds.last()`).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramValue {
    /// Creates an empty histogram with the given inclusive bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramValue {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Index of the bucket a sample lands in (`bounds.len()` = overflow).
    #[must_use]
    pub fn bucket_index(&self, v: u64) -> usize {
        // Buckets are few (fixed at registration); partition_point keeps
        // this O(log n) without a lookup table.
        self.bounds.partition_point(|&b| b < v)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self.bucket_index(v);
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean sample value, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 < q <= 1.0`) from the bucket counts.
    ///
    /// Finds the bucket holding the `ceil(q * count)`-th sample and
    /// interpolates linearly inside it, clamped to the observed
    /// `[min, max]`. The error bound is the width of that bucket: the
    /// true sample is somewhere in `(lower_bound, upper_bound]`, so the
    /// estimate is off by at most `upper_bound - lower_bound` (tightened
    /// by the min/max clamp at the edges). A quantile landing in the
    /// overflow bucket returns the observed `max` exactly. Returns 0 for
    /// an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == self.bounds.len() {
                    // Overflow bucket: the only honest point estimate is
                    // the observed maximum.
                    return self.max;
                }
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (rank - seen) as f64 / c as f64;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let est = lo + ((hi - lo) as f64 * frac).round() as u64;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Adds another histogram's buckets into this one.
    ///
    /// Returns `false` (leaving `self` untouched) when the bucket bounds
    /// differ — those are different metrics that happen to share a name,
    /// and silently re-bucketing would fabricate data.
    pub fn merge(&mut self, other: &HistogramValue) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        if other.count == 0 {
            return true;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        true
    }
}

/// One metric's aggregated value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic sum.
    Counter(u64),
    /// Sampled level.
    Gauge(GaugeValue),
    /// Fixed-bucket distribution.
    Histogram(HistogramValue),
}

/// A live metrics registry. Not thread-safe by design: each simulation
/// cell owns one, and cross-thread aggregation happens on plain-data
/// [`Snapshot`]s after the cell completes.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<(&'static str, MetricValue)>,
    index: HashMap<&'static str, usize>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn intern(&mut self, key: &'static str, init: impl FnOnce() -> MetricValue) -> usize {
        if let Some(&i) = self.index.get(key) {
            return i;
        }
        let i = self.entries.len();
        self.entries.push((key, init()));
        self.index.insert(key, i);
        i
    }

    /// Registers (or re-resolves) a counter.
    ///
    /// # Panics
    /// If `key` is already registered as a different metric kind.
    pub fn counter(&mut self, key: &'static str) -> CounterId {
        let i = self.intern(key, || MetricValue::Counter(0));
        assert!(
            matches!(self.entries[i].1, MetricValue::Counter(_)),
            "metric {key:?} already registered with a different kind"
        );
        CounterId(i)
    }

    /// Registers (or re-resolves) a gauge.
    ///
    /// # Panics
    /// If `key` is already registered as a different metric kind.
    pub fn gauge(&mut self, key: &'static str) -> GaugeId {
        let i = self.intern(key, || MetricValue::Gauge(GaugeValue::default()));
        assert!(
            matches!(self.entries[i].1, MetricValue::Gauge(_)),
            "metric {key:?} already registered with a different kind"
        );
        GaugeId(i)
    }

    /// Registers (or re-resolves) a histogram with inclusive bucket
    /// `bounds`.
    ///
    /// # Panics
    /// If `key` is already registered as a different kind or with
    /// different bounds, or if `bounds` is invalid (see
    /// [`HistogramValue::new`]).
    pub fn histogram(&mut self, key: &'static str, bounds: &[u64]) -> HistogramId {
        let i = self.intern(key, || MetricValue::Histogram(HistogramValue::new(bounds)));
        match &self.entries[i].1 {
            MetricValue::Histogram(h) => {
                assert!(
                    h.bounds == bounds,
                    "histogram {key:?} re-registered with different bounds"
                );
            }
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
        HistogramId(i)
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        if let MetricValue::Counter(c) = &mut self.entries[id.0].1 {
            *c += n;
        }
    }

    /// Records a gauge sample.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        if let MetricValue::Gauge(g) = &mut self.entries[id.0].1 {
            g.observe(v);
        }
    }

    /// Records a histogram sample.
    pub fn record(&mut self, id: HistogramId, v: u64) {
        if let MetricValue::Histogram(h) = &mut self.entries[id.0].1 {
            h.record(v);
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copies the current values out as plain, thread-portable data, in
    /// registration order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]: plain data, `Send`, cheap to
/// move across the `btb-par` result channel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs in registration / first-appearance order.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks a metric up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// A counter's value, defaulting to 0 when absent or not a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// True when the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds `other` into `self`: counters add, histograms add bucketwise,
    /// gauges union their samples. Keys new to `self` are appended in
    /// `other`'s order. Per-key values are commutative; key *order* (and a
    /// gauge's `last`) depend on fold order, so deterministic exports fold
    /// snapshots in submission order.
    ///
    /// Kind or bucket-bounds mismatches keep `self`'s entry unchanged
    /// (checked in debug builds) rather than fabricating a combined value.
    pub fn merge(&mut self, other: &Snapshot) {
        for (key, val) in &other.entries {
            match self.entries.iter_mut().find(|(k, _)| k == key) {
                None => self.entries.push((key.clone(), val.clone())),
                Some((_, mine)) => match (mine, val) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => a.merge(b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        let ok = a.merge(b);
                        debug_assert!(ok, "histogram {key:?} merged with different bounds");
                    }
                    _ => debug_assert!(false, "metric {key:?} merged across kinds"),
                },
            }
        }
    }

    /// Counter-wise difference `self - earlier` (saturating), for "what
    /// happened during this phase" deltas. Gauges and histograms keep
    /// `self`'s value: they describe distributions, not monotonic totals,
    /// and a bucketwise subtraction of a *shared-min/max* histogram would
    /// report impossible min/max for the interval.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (key, val) in &mut out.entries {
            if let (MetricValue::Counter(c), Some(MetricValue::Counter(e))) =
                (&mut *val, earlier.get(key))
            {
                *c = c.saturating_sub(*e);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut r = Registry::new();
        let c = r.counter("a");
        r.add(c, 3);
        r.add(c, 4);
        assert_eq!(r.snapshot().counter("a"), 7);
        // Re-registering the same key returns the same slot.
        let c2 = r.counter("a");
        assert_eq!(c, c2);
    }

    #[test]
    fn gauge_statistics() {
        let mut g = GaugeValue::default();
        for v in [2.0, 8.0, 4.0] {
            g.observe(v);
        }
        assert_eq!(g.last, 4.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 8.0);
        assert!((g.mean() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative_per_key() {
        let mk = |vals: &[u64]| {
            let mut r = Registry::new();
            let c = r.counter("n");
            let h = r.histogram("h", &[10, 20]);
            for &v in vals {
                r.add(c, v);
                r.record(h, v);
            }
            r.snapshot()
        };
        let (a, b) = (mk(&[1, 15]), mk(&[25, 5]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("n"), ba.counter("n"));
        let (Some(MetricValue::Histogram(hab)), Some(MetricValue::Histogram(hba))) =
            (ab.get("h"), ba.get("h"))
        else {
            panic!("histograms survived the merge")
        };
        assert_eq!(hab.counts, hba.counts);
        assert_eq!(hab.sum, hba.sum);
        assert_eq!((hab.min, hab.max), (hba.min, hba.max));
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = HistogramValue::new(&[10, 20, 40]);
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        // All ten samples in the first bucket (0, 10]: rank r maps to
        // 0 + 10 * r/10 = r, clamped to [min, max] = [1, 10].
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.01), 1); // clamp to min

        // Estimation error is bounded by the bucket width.
        let mut h = HistogramValue::new(&[100, 200]);
        for v in [150, 151, 152, 153] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((100..=200).contains(&p50), "p50={p50} inside its bucket");
        assert!(p50.abs_diff(151) <= 100, "within one bucket width");
    }

    #[test]
    fn quantile_overflow_bucket_reports_max() {
        let mut h = HistogramValue::new(&[10]);
        for v in [5, 500, 900] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.99), 900);
        assert_eq!(h.quantile(1.0), 900);
        // p-very-low lands in the finite bucket; rank 1 of 1 there
        // interpolates to the bucket's upper edge (true value 5, error
        // within the bucket width of 10).
        assert_eq!(h.quantile(0.1), 10);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = HistogramValue::new(&[10]);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn delta_subtracts_counters_only() {
        let mut r = Registry::new();
        let c = r.counter("n");
        let g = r.gauge("g");
        r.add(c, 5);
        r.set(g, 1.0);
        let early = r.snapshot();
        r.add(c, 7);
        r.set(g, 3.0);
        let late = r.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.counter("n"), 7);
        let Some(MetricValue::Gauge(gv)) = d.get("g") else {
            panic!("gauge kept")
        };
        assert_eq!(gv.last, 3.0);
        assert_eq!(gv.samples, 2);
    }
}
