//! Prometheus text exposition (format 0.0.4) over a [`Snapshot`], plus a
//! strict conformance parser used by tests, `btb-load`, and
//! `ci/serve_smoke.sh` to validate what the daemon actually serves.
//!
//! Rendering is deterministic: families appear in snapshot entry order,
//! metric names are the snapshot keys sanitized (`.` and any other
//! non-`[a-zA-Z0-9_]` byte become `_`) under a `btb_` prefix, and
//! histogram families emit the canonical `_bucket`(cumulative, with a
//! final `le="+Inf"`)/`_sum`/`_count` triplet. Rendering the same
//! snapshot twice yields byte-identical text.

use crate::metrics::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Sanitizes a snapshot key into a Prometheus metric name:
/// `btb_` prefix, every byte outside `[a-zA-Z0-9_]` mapped to `_`.
#[must_use]
pub fn prometheus_name(key: &str) -> String {
    let mut out = String::with_capacity(4 + key.len());
    out.push_str("btb_");
    for ch in key.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Formats an `f64` the way we expose it: `+Inf`/`-Inf`/`NaN` keywords,
/// otherwise Rust's shortest round-trip decimal.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders `snap` as Prometheus text exposition. Counters and gauges
/// become single samples (a gauge exposes its last observed level);
/// histograms become cumulative `_bucket` series with a `+Inf` bucket,
/// plus `_sum` and `_count`.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (key, val) in &snap.entries {
        let name = prometheus_name(key);
        match val {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", fmt_value(g.last));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for (i, b) in h.bounds.iter().enumerate() {
                    cum += h.counts[i];
                    let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Metric kind declared by a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One sample line inside a family.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Full sample name (family name, possibly with a histogram suffix).
    pub name: String,
    /// Label pairs in appearance order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// A parsed metric family: its `# TYPE` declaration plus samples.
#[derive(Debug, Clone, PartialEq)]
pub struct PromFamily {
    /// Declared family name.
    pub name: String,
    /// Declared kind.
    pub kind: PromKind,
    /// Samples belonging to this family.
    pub samples: Vec<PromSample>,
}

impl PromFamily {
    /// First sample value with the exact name `name` and no labels.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("bad value {s:?}")),
    }
}

/// A parsed sample head: metric name, label pairs, rest of the line.
type SampleHead<'a> = (String, Vec<(String, String)>, &'a str);

/// Parses `name{labels}` off the front of a sample line, returning the
/// sample (without value) and the rest of the line.
fn parse_sample_head(line: &str) -> Result<SampleHead<'_>, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name in line {line:?}"));
    }
    let rest = &line[name_end..];
    if !rest.starts_with('{') {
        return Ok((name.to_owned(), Vec::new(), rest));
    }
    let mut labels = Vec::new();
    let mut chars = rest[1..].char_indices().peekable();
    let body = &rest[1..];
    loop {
        // label name
        let start = match chars.peek() {
            Some(&(i, _)) => i,
            None => return Err("unterminated label set".to_owned()),
        };
        let mut eq = None;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                eq = Some(i);
                break;
            }
        }
        let Some(eq) = eq else {
            return Err("label without '='".to_owned());
        };
        let lname = &body[start..eq];
        if !valid_label_name(lname) {
            return Err(format!("invalid label name {lname:?}"));
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("label value must be quoted".to_owned()),
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape in label value: {other:?}")),
                },
                _ => value.push(c),
            }
        }
        if !closed {
            return Err("unterminated label value".to_owned());
        }
        labels.push((lname.to_owned(), value));
        match chars.next() {
            Some((_, ',')) => {}
            Some((i, '}')) => {
                let after = &body[i + 1..];
                return Ok((name.to_owned(), labels, after));
            }
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

/// Parses Prometheus text exposition strictly, enforcing the subset this
/// repo emits:
///
/// - every sample is preceded by a `# TYPE` line for its family, and a
///   family is declared at most once;
/// - metric and label names match the exposition grammar; label values
///   unescape cleanly; values parse as floats (or `+Inf`/`-Inf`/`NaN`);
/// - histogram families carry a complete `_bucket`/`_sum`/`_count`
///   triplet, bucket counts are cumulative (non-decreasing) with
///   strictly increasing `le` bounds, and the final `le="+Inf"` bucket
///   equals `_count`.
///
/// # Errors
/// A message naming the first offending line or family.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromFamily>, String> {
    let mut families: Vec<PromFamily> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end_matches('\r');
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(err(format!("malformed TYPE line {line:?}")));
                };
                if !valid_name(name) {
                    return Err(err(format!("invalid family name {name:?}")));
                }
                if families.iter().any(|f| f.name == name) {
                    return Err(err(format!("family {name:?} declared twice")));
                }
                let kind = match kind {
                    "counter" => PromKind::Counter,
                    "gauge" => PromKind::Gauge,
                    "histogram" => PromKind::Histogram,
                    other => return Err(err(format!("unsupported TYPE {other:?}"))),
                };
                families.push(PromFamily {
                    name: name.to_owned(),
                    kind,
                    samples: Vec::new(),
                });
            }
            // HELP and other comments are ignored.
            continue;
        }
        let (name, labels, rest) = parse_sample_head(line).map_err(err)?;
        let rest = rest.trim_start();
        let mut parts = rest.split_whitespace();
        let Some(value) = parts.next() else {
            return Err(err(format!("sample {name:?} has no value")));
        };
        if parts.next().is_some() {
            return Err(err(format!("trailing data after value in {line:?}")));
        }
        let value = parse_value(value).map_err(err)?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| sample_belongs(&name, &f.name, f.kind))
            .ok_or_else(|| err(format!("sample {name:?} has no preceding TYPE line")))?;
        family.samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    for f in &families {
        check_family(f)?;
    }
    Ok(families)
}

fn sample_belongs(sample: &str, family: &str, kind: PromKind) -> bool {
    if sample == family {
        return true;
    }
    kind == PromKind::Histogram
        && sample
            .strip_prefix(family)
            .is_some_and(|sfx| matches!(sfx, "_bucket" | "_sum" | "_count"))
}

fn check_family(f: &PromFamily) -> Result<(), String> {
    match f.kind {
        PromKind::Counter | PromKind::Gauge => {
            if f.samples.is_empty() {
                return Err(format!("family {:?} has no samples", f.name));
            }
            Ok(())
        }
        PromKind::Histogram => check_histogram(f),
    }
}

fn check_histogram(f: &PromFamily) -> Result<(), String> {
    let name = &f.name;
    let mut buckets: Vec<(f64, f64)> = Vec::new(); // (le, cumulative count)
    let mut sum = None;
    let mut count = None;
    for s in &f.samples {
        match s.name.strip_prefix(name.as_str()) {
            Some("_bucket") => {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("histogram {name:?} bucket without le label"))?;
                let le = parse_value(&le.1)
                    .map_err(|e| format!("histogram {name:?} bad le bound: {e}"))?;
                buckets.push((le, s.value));
            }
            Some("_sum") => sum = Some(s.value),
            Some("_count") => count = Some(s.value),
            _ => return Err(format!("histogram {name:?} has stray sample {:?}", s.name)),
        }
    }
    let Some(count) = count else {
        return Err(format!("histogram {name:?} missing _count"));
    };
    if sum.is_none() {
        return Err(format!("histogram {name:?} missing _sum"));
    }
    if buckets.is_empty() {
        return Err(format!("histogram {name:?} has no buckets"));
    }
    for w in buckets.windows(2) {
        if w[1].0 <= w[0].0 {
            return Err(format!("histogram {name:?} le bounds not increasing"));
        }
        if w[1].1 < w[0].1 {
            return Err(format!("histogram {name:?} bucket counts not cumulative"));
        }
    }
    let last = buckets.last().unwrap();
    if !last.0.is_infinite() {
        return Err(format!("histogram {name:?} missing le=\"+Inf\" bucket"));
    }
    if (last.1 - count).abs() > f64::EPSILON {
        return Err(format!(
            "histogram {name:?} +Inf bucket {} != _count {count}",
            last.1
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let mut r = Registry::new();
        let c = r.counter("serve.requests");
        let g = r.gauge("serve.queue.depth");
        let h = r.histogram("serve.request.micros", &[100, 1_000, 10_000]);
        r.add(c, 17);
        r.set(g, 3.0);
        for v in [50, 150, 2_000, 50_000] {
            r.record(h, v);
        }
        r.snapshot()
    }

    #[test]
    fn render_is_deterministic_and_parses() {
        let snap = sample_snapshot();
        let a = render_prometheus(&snap);
        let b = render_prometheus(&snap);
        assert_eq!(a, b, "same snapshot renders byte-identically");
        let families = parse_prometheus(&a).expect("conformant output");
        assert_eq!(families.len(), 3);
        assert_eq!(families[0].name, "btb_serve_requests");
        assert_eq!(families[0].kind, PromKind::Counter);
        assert_eq!(families[0].value("btb_serve_requests"), Some(17.0));
        assert_eq!(families[1].kind, PromKind::Gauge);
        let h = &families[2];
        assert_eq!(h.kind, PromKind::Histogram);
        assert_eq!(h.value("btb_serve_request_micros_count"), Some(4.0));
        assert_eq!(h.value("btb_serve_request_micros_sum"), Some(52_200.0));
        // Cumulative buckets: <=100 → 1, <=1000 → 2, <=10000 → 3, +Inf → 4.
        let cum: Vec<f64> = h
            .samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket"))
            .map(|s| s.value)
            .collect();
        assert_eq!(cum, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn label_escaping_round_trips() {
        let text = "# TYPE x counter\nx{path=\"a\\\\b\\\"c\\nd\"} 1\n";
        let fams = parse_prometheus(text).unwrap();
        assert_eq!(fams[0].samples[0].labels[0].1, "a\\b\"c\nd");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn rejects_sample_without_type() {
        let err = parse_prometheus("orphan 1\n").unwrap_err();
        assert!(err.contains("no preceding TYPE"), "{err}");
    }

    #[test]
    fn rejects_duplicate_family() {
        let text = "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("declared twice"), "{err}");
    }

    #[test]
    fn rejects_bad_names_and_values() {
        assert!(parse_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err());
        let err = parse_prometheus("# TYPE x counter\nx notanumber\n").unwrap_err();
        assert!(err.contains("bad value"), "{err}");
    }

    #[test]
    fn rejects_incoherent_histograms() {
        // Missing +Inf bucket.
        let t = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_prometheus(t).unwrap_err().contains("+Inf"));
        // Non-cumulative buckets.
        let t = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse_prometheus(t).unwrap_err().contains("not cumulative"));
        // +Inf disagrees with _count.
        let t = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(parse_prometheus(t).unwrap_err().contains("!= _count"));
        // Missing _sum.
        let t = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n";
        assert!(parse_prometheus(t).unwrap_err().contains("missing _sum"));
    }

    #[test]
    fn name_sanitization() {
        assert_eq!(
            prometheus_name("serve.request.micros"),
            "btb_serve_request_micros"
        );
        assert_eq!(
            prometheus_name("trace.track.l1-btb"),
            "btb_trace_track_l1_btb"
        );
    }
}
