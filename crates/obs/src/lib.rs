//! # btb-obs: structured metrics and cycle-domain tracing for the BTB stack
//!
//! The paper's figures are aggregate endpoints (MPKI, IPC, penalty-class
//! cycle counts), but its *arguments* are about time-resolved frontend
//! behaviour: where FTQ occupancy collapses under FDIP, when the Fig. 3
//! penalty classes land, how the L1/L2 BTB hit mix shifts between
//! organizations. This crate is the shared layer that makes those visible
//! without printf debugging:
//!
//! * [`metrics`] — a registry of counters, gauges and fixed-bucket
//!   histograms addressed by `&'static str` keys interned to dense integer
//!   handles, so the recording path is an array index, not a hash lookup.
//!   A [`Snapshot`] is plain data: delta-able, and mergeable with
//!   commutative semantics so aggregates are identical at any
//!   `btb-par` thread count (callers still merge in submission order,
//!   matching `ordered_map`'s output contract).
//! * [`trace`] — a [`TraceBuffer`] of structured spans / instants /
//!   counter samples on named tracks. **All timestamps are simulator
//!   cycles, never wall clock**, which is what keeps trace files
//!   byte-deterministic across machines and thread counts.
//! * [`perfetto`] — serializes a [`TraceBuffer`] to Chrome trace-event
//!   JSON (the format both `chrome://tracing` and <https://ui.perfetto.dev>
//!   open directly). One event per line, keys in fixed order, integer
//!   timestamps: byte-for-byte reproducible.
//! * [`summary`] — a human-readable aligned table of a [`Snapshot`], the
//!   `--metrics` terminal view.
//! * [`span`] — wall-clock span tracing with hierarchical span ids and a
//!   per-request correlation id, threaded through serve→pool→harness→sim.
//!   Wall data is confined to stderr, `GET /debug/trace`, and explicit
//!   `--trace-wall` outputs, preserving the byte-determinism contract.
//! * [`expo`] — Prometheus text exposition of a [`Snapshot`] plus a
//!   strict conformance parser (shared by tests, `btb-load`, and CI).
//! * [`log`] — leveled `key=value` stderr logging gated by `BTB_LOG`.
//!
//! The crate has **zero dependencies** (it sits below `btb-sim` in the
//! workspace DAG); its JSON writer mirrors `btb-store`'s escaping rules
//! and the round-trip is pinned by a test that re-parses emitted traces
//! with `btb_store::JsonValue::parse`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod expo;
pub mod log;
pub mod metrics;
pub mod perfetto;
pub mod span;
pub mod summary;
pub mod trace;

pub use expo::{parse_prometheus, render_prometheus, PromFamily, PromKind, PromSample};
pub use metrics::{
    CounterId, GaugeId, GaugeValue, HistogramId, HistogramValue, MetricValue, Registry, Snapshot,
};
pub use perfetto::{chrome_trace_json, chrome_trace_json_with_wall};
pub use span::{wall_trace_json, SpanContext, SpanGuard, WallSpan};
pub use summary::render_summary;
pub use trace::{TraceBuffer, TraceEvent, TrackId};
