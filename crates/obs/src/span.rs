//! Wall-clock span tracing with request correlation.
//!
//! Complements the cycle-domain [`crate::TraceBuffer`]: where that buffer
//! attributes *simulated cycles* to pipeline activity, this module
//! attributes *wall-clock time* to serving-path stages (queue wait, store
//! I/O, memo wait, warmup, measured simulation). Spans carry a
//! hierarchical parent id plus a per-request correlation id so one slow
//! HTTP request can be decomposed across threads: the connection handler
//! opens the root span, workers adopt the request's [`SpanContext`], and
//! every child recorded anywhere in the process shares the request id.
//!
//! Determinism boundary: wall-clock data never reaches stdout or any
//! byte-diffed artifact. It is exported only through `GET /debug/trace`,
//! the explicit `figures --trace-wall FILE` output, and (when wall
//! tracing is on) extra tracks merged into per-cell Chrome traces.
//!
//! Zero overhead when off: [`enter`] and the recording helpers check one
//! relaxed [`AtomicBool`] and return inert guards without reading the
//! clock, touching thread-locals, or allocating. In steady state the
//! enabled path is also allocation-free: spans land in a pre-allocated
//! ring (oldest overwritten, overwrites counted) and names are
//! `&'static str`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the global span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_IX: AtomicU64 = AtomicU64::new(1);

/// One completed wall-clock span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSpan {
    /// Unique span id (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span on the recording thread (0 = root).
    pub parent: u64,
    /// Correlation id shared by every span of one request (0 = none).
    pub request: u64,
    /// Small dense per-OS-thread index (Chrome trace `tid` lane).
    pub thread: u32,
    /// Stage name, e.g. `"queue.wait"` or `"sim.measured"`.
    pub name: &'static str,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

struct Ring {
    spans: Vec<WallSpan>,
    cap: usize,
    /// Next overwrite position once full.
    next: usize,
    /// Spans overwritten because the ring was full.
    dropped: u64,
    /// Total spans ever recorded (including overwritten ones).
    total: u64,
}

impl Ring {
    fn push(&mut self, s: WallSpan) {
        self.total += 1;
        if self.spans.len() < self.cap {
            self.spans.push(s);
        } else {
            self.spans[self.next] = s;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Spans in recording order (oldest surviving first).
    fn snapshot(&self) -> Vec<WallSpan> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.next..]);
        out.extend_from_slice(&self.spans[..self.next]);
        out
    }
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            spans: Vec::new(),
            cap: DEFAULT_SPAN_CAPACITY,
            next: 0,
            dropped: 0,
            total: 0,
        })
    })
}

/// Monotonic epoch all span timestamps are relative to. Pinned on the
/// first call, so enable tracing (or touch it) before capturing any
/// `Instant` you intend to feed to [`record_interval`].
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// (current parent span id, current request id) for this thread.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    /// Dense per-thread index, assigned on first span.
    static THREAD_IX: Cell<u32> = const { Cell::new(0) };
}

fn thread_ix() -> u32 {
    THREAD_IX.with(|c| {
        let ix = c.get();
        if ix != 0 {
            return ix;
        }
        #[allow(clippy::cast_possible_truncation)]
        let fresh = NEXT_THREAD_IX.fetch_add(1, Ordering::Relaxed) as u32;
        c.set(fresh);
        fresh
    })
}

/// Turns wall-clock span collection on or off (off by default). Enabling
/// pre-allocates the ring and pins the trace epoch. Already-recorded
/// spans survive a disable/re-enable cycle.
pub fn set_wall_tracing(on: bool) {
    if on {
        let mut r = ring().lock().unwrap();
        if r.spans.capacity() < r.cap {
            let cap = r.cap;
            r.spans.reserve_exact(cap);
        }
        drop(r);
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether wall-clock span collection is currently on.
#[must_use]
pub fn wall_tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates a fresh request correlation id (never 0). Independent of
/// whether tracing is enabled, so `X-Btb-Request-Id` stays stable.
#[must_use]
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Propagation handle: the (parent span, request) pair that child spans
/// recorded on another thread should attach to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    /// Parent span id for children created under this context.
    pub parent: u64,
    /// Request correlation id.
    pub request: u64,
}

/// The current thread's propagation context.
#[must_use]
pub fn current_context() -> SpanContext {
    let (parent, request) = CONTEXT.with(Cell::get);
    SpanContext { parent, request }
}

/// The current thread's request correlation id (0 = none).
#[must_use]
pub fn current_request() -> u64 {
    CONTEXT.with(Cell::get).1
}

/// Installs `ctx` as the current thread's context until the guard drops
/// (the previous context is then restored). Used to adopt a request's
/// identity across queue hops.
#[must_use]
pub fn set_context(ctx: SpanContext) -> ContextGuard {
    let prev = CONTEXT.with(|c| c.replace((ctx.parent, ctx.request)));
    ContextGuard { prev }
}

/// Restores the previous [`SpanContext`] on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        CONTEXT.with(|c| c.set(prev));
    }
}

/// Ensures the current thread has a request correlation id, assigning a
/// fresh one when tracing is on and none is set (the `figures` path,
/// where there is no HTTP request to inherit from). Inert when tracing
/// is off or a request id is already installed.
#[must_use]
pub fn ensure_request() -> RequestScope {
    if !wall_tracing_enabled() || current_request() != 0 {
        return RequestScope { guard: None };
    }
    let ctx = SpanContext {
        parent: 0,
        request: next_request_id(),
    };
    RequestScope {
        guard: Some(set_context(ctx)),
    }
}

/// Guard from [`ensure_request`]; restores the prior context on drop.
#[derive(Debug, Default)]
pub struct RequestScope {
    guard: Option<ContextGuard>,
}

impl RequestScope {
    /// True when this scope installed a fresh request id.
    #[must_use]
    pub fn installed(&self) -> bool {
        self.guard.is_some()
    }
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    request: u64,
    name: &'static str,
    start: Instant,
}

/// RAII guard for an in-progress span; records it on drop (or on an
/// explicit [`SpanGuard::finish`]) and restores the thread's parent id.
#[derive(Default)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => write!(f, "SpanGuard({} #{})", a.name, a.id),
            None => write!(f, "SpanGuard(inert)"),
        }
    }
}

impl SpanGuard {
    /// A guard that records nothing; useful as a placeholder field.
    #[must_use]
    pub fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// This span's id (0 when inert).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }

    /// Ends the span now, recording it and restoring the thread's parent
    /// id. Subsequent calls (and the eventual drop) are no-ops.
    pub fn finish(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur = a.start.elapsed();
        CONTEXT.with(|c| {
            let (_, req) = c.get();
            c.set((a.parent, req));
        });
        record(WallSpan {
            id: a.id,
            parent: a.parent,
            request: a.request,
            thread: thread_ix(),
            name: a.name,
            #[allow(clippy::cast_possible_truncation)]
            start_us: a.start.saturating_duration_since(epoch()).as_micros() as u64,
            #[allow(clippy::cast_possible_truncation)]
            dur_us: dur.as_micros() as u64,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Opens a span named `name` under the current thread's context. The
/// span becomes the thread's parent until the guard finishes. Returns an
/// inert guard (no clock read, no allocation) when tracing is off.
#[must_use]
pub fn enter(name: &'static str) -> SpanGuard {
    if !wall_tracing_enabled() {
        return SpanGuard::inert();
    }
    let id = next_span_id();
    let (parent, request) = CONTEXT.with(|c| {
        let prev = c.get();
        c.set((id, prev.1));
        prev
    });
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            request,
            name,
            start: Instant::now(),
        }),
    }
}

/// The current time when tracing is on, else `None`. Pair with
/// [`record_since`] for post-hoc spans whose name is only known after
/// the fact (e.g. `memo.wait` vs a fresh run).
#[must_use]
pub fn now_if_enabled() -> Option<Instant> {
    wall_tracing_enabled().then(Instant::now)
}

/// Records a completed span from `start` to now under the current
/// thread's context. No-op when `start` is `None` or tracing is off.
pub fn record_since(name: &'static str, start: Option<Instant>) {
    let Some(start) = start else { return };
    if !wall_tracing_enabled() {
        return;
    }
    record_interval(name, start, Instant::now(), current_context());
}

/// Records a completed span covering `[start, end]` under `ctx`. Used
/// for intervals measured on another thread (queue wait: enqueue
/// timestamp travels with the job, the worker records the span). No-op
/// when tracing is off.
pub fn record_interval(name: &'static str, start: Instant, end: Instant, ctx: SpanContext) {
    if !wall_tracing_enabled() {
        return;
    }
    let e = epoch();
    #[allow(clippy::cast_possible_truncation)]
    let start_us = start.saturating_duration_since(e).as_micros() as u64;
    #[allow(clippy::cast_possible_truncation)]
    let dur_us = end.saturating_duration_since(start).as_micros() as u64;
    record(WallSpan {
        id: next_span_id(),
        parent: ctx.parent,
        request: ctx.request,
        thread: thread_ix(),
        name,
        start_us,
        dur_us,
    });
}

fn record(s: WallSpan) {
    ring().lock().unwrap().push(s);
}

/// Snapshot of the span ring in recording order (oldest surviving
/// first). Allocates; intended for export, not hot paths.
#[must_use]
pub fn recent_spans() -> Vec<WallSpan> {
    ring().lock().unwrap().snapshot()
}

/// Spans in the ring carrying request correlation id `request`.
#[must_use]
pub fn spans_for_request(request: u64) -> Vec<WallSpan> {
    ring()
        .lock()
        .unwrap()
        .snapshot()
        .into_iter()
        .filter(|s| s.request == request)
        .collect()
}

/// Spans overwritten because the ring was full.
#[must_use]
pub fn dropped_spans() -> u64 {
    ring().lock().unwrap().dropped
}

/// Total spans ever recorded (including overwritten ones).
#[must_use]
pub fn recorded_spans() -> u64 {
    ring().lock().unwrap().total
}

/// Clears the ring and its drop counter (test hook; ids keep counting).
pub fn reset_wall_spans() {
    let mut r = ring().lock().unwrap();
    r.spans.clear();
    r.next = 0;
    r.dropped = 0;
    r.total = 0;
}

/// Renders `spans` as a standalone Chrome trace-event JSON document in
/// the wall-clock domain (`ts`/`dur` in microseconds since the process
/// trace epoch). Each span becomes an `X` event on a per-thread `tid`
/// lane with `request`/`span`/`parent` ids in `args` for correlation
/// with cycle-domain tracks and the `X-Btb-Request-Id` header.
#[must_use]
pub fn wall_trace_json(spans: &[WallSpan], process_name: &str) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    write_wall_events(
        &mut out,
        spans,
        process_name,
        crate::perfetto::WALL_PID,
        &mut first,
    );
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock_domain\":\"wall-us\",");
    out.push_str(&format!(
        "\"dropped_spans\":{},\"recorded_spans\":{}}}}}",
        dropped_spans(),
        recorded_spans()
    ));
    out
}

/// Emits wall-span metadata + `X` events into an in-progress Chrome
/// `traceEvents` array. Shared by [`wall_trace_json`] and the merged
/// cycle+wall export in [`crate::perfetto`].
pub(crate) fn write_wall_events(
    out: &mut String,
    spans: &[WallSpan],
    process_name: &str,
    pid: u32,
    first: &mut bool,
) {
    use std::fmt::Write as _;

    let mut push_sep = |out: &mut String| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
    };

    push_sep(out);
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
    ));
    crate::perfetto::write_escaped(out, &format!("{process_name} (wall clock)"));
    out.push_str("}}");

    // One metadata event per thread lane, in first-appearance order.
    let mut lanes: Vec<u32> = Vec::new();
    for s in spans {
        if !lanes.contains(&s.thread) {
            lanes.push(s.thread);
        }
    }
    lanes.sort_unstable();
    for t in &lanes {
        push_sep(out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{t},\
             \"args\":{{\"name\":\"wall thread {t}\"}}}}"
        );
    }

    for s in spans {
        push_sep(out);
        out.push_str("{\"name\":");
        crate::perfetto::write_escaped(out, s.name);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"request\":\"{:016x}\",\"span\":{},\"parent\":{}}}}}",
            s.thread, s.start_us, s.dur_us, s.request, s.id, s.parent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize span tests: they share the global ring and enable flag.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_guards_are_inert() {
        let _g = lock();
        set_wall_tracing(false);
        reset_wall_spans();
        let before = current_context();
        {
            let mut g = enter("never");
            assert_eq!(g.id(), 0);
            g.finish();
        }
        assert_eq!(current_context(), before);
        assert!(recent_spans().is_empty());
        assert_eq!(recorded_spans(), 0);
        assert!(now_if_enabled().is_none());
        record_since("never", None);
    }

    #[test]
    fn nesting_sets_parent_and_restores_context() {
        let _g = lock();
        set_wall_tracing(true);
        reset_wall_spans();
        let _req = ensure_request();
        let rid = current_request();
        assert_ne!(rid, 0);
        let outer_id;
        {
            let outer = enter("outer");
            outer_id = outer.id();
            assert_eq!(current_context().parent, outer_id);
            {
                let _inner = enter("inner");
            }
            // inner finished: parent restored to outer
            assert_eq!(current_context().parent, outer_id);
        }
        assert_eq!(current_context().parent, 0);
        set_wall_tracing(false);

        let spans = recent_spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.id, outer_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.request, rid);
        assert_eq!(outer.request, rid);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn context_propagates_across_threads() {
        let _g = lock();
        set_wall_tracing(true);
        reset_wall_spans();
        let ctx = SpanContext {
            parent: 77,
            request: 42,
        };
        let t0 = Instant::now();
        std::thread::spawn(move || {
            let _c = set_context(ctx);
            record_interval("queue.wait", t0, Instant::now(), current_context());
            let _child = enter("cell.run");
        })
        .join()
        .unwrap();
        set_wall_tracing(false);
        let spans = spans_for_request(42);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.request == 42));
        let wait = spans.iter().find(|s| s.name == "queue.wait").unwrap();
        assert_eq!(wait.parent, 77);
        let run = spans.iter().find(|s| s.name == "cell.run").unwrap();
        assert_eq!(run.parent, 77);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = lock();
        set_wall_tracing(true);
        reset_wall_spans();
        let n = DEFAULT_SPAN_CAPACITY + 10;
        let t = Instant::now();
        let ctx = SpanContext::default();
        for _ in 0..n {
            record_interval("spin", t, t, ctx);
        }
        set_wall_tracing(false);
        assert_eq!(dropped_spans(), 10);
        assert_eq!(recorded_spans(), n as u64);
        assert_eq!(recent_spans().len(), DEFAULT_SPAN_CAPACITY);
        reset_wall_spans();
    }

    #[test]
    fn wall_trace_json_is_valid_shape() {
        let _g = lock();
        set_wall_tracing(true);
        reset_wall_spans();
        {
            let _req = ensure_request();
            let _a = enter("alpha");
        }
        set_wall_tracing(false);
        let spans = recent_spans();
        let json = wall_trace_json(&spans, "unit");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"clock_domain\":\"wall-us\""));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"request\":\""));
        assert!(json.ends_with("}}"));
        reset_wall_spans();
    }
}
