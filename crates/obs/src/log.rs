//! Leveled structured logging to stderr, gated by the `BTB_LOG`
//! environment variable (`error`, `warn`, `info`, `debug`; anything
//! else — including unset — disables logging entirely).
//!
//! Lines are `key=value` structured and carry a milliseconds-since-start
//! stamp, e.g.:
//!
//! ```text
//! btb[info]    12.345ms serve: req=0000000000000001 method=GET path=/healthz status=200 micros=41
//! ```
//!
//! Determinism boundary: log output goes to stderr only, never stdout,
//! so byte-diffed artifacts are unaffected at any level. Zero overhead
//! when off: [`enabled`] is a single relaxed atomic load (after a
//! one-time env read) and callers are expected to gate formatting on it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// Request-level lifecycle events.
    Info = 3,
    /// Per-stage detail (queue claims, memo joins).
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 0 = uninitialised, 1 = off, otherwise `Level as u8 + 1`.
static STATE: AtomicU8 = AtomicU8::new(0);

fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" | "trace" => Some(Level::Debug),
        _ => None,
    }
}

fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s != 0 {
        return s;
    }
    let parsed = std::env::var("BTB_LOG")
        .ok()
        .as_deref()
        .and_then(parse_level);
    let encoded = parsed.map_or(1, |l| l as u8 + 1);
    STATE.store(encoded, Ordering::Relaxed);
    encoded
}

/// Overrides the level (test hook; `None` = off). Takes precedence over
/// `BTB_LOG` from then on.
pub fn set_level(level: Option<Level>) {
    STATE.store(level.map_or(1, |l| l as u8 + 1), Ordering::Relaxed);
}

/// The active level, if logging is on.
#[must_use]
pub fn level() -> Option<Level> {
    match state() {
        0 | 1 => None,
        n => match n - 1 {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            _ => Some(Level::Debug),
        },
    }
}

/// True when a message at `l` would be emitted. Gate any expensive
/// formatting on this.
#[must_use]
pub fn enabled(l: Level) -> bool {
    level().is_some_and(|active| l <= active)
}

fn start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emits one structured line to stderr if `l` is enabled.
pub fn log(l: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(l) {
        return;
    }
    let ms = start().elapsed().as_secs_f64() * 1e3;
    eprintln!("btb[{:<5}] {ms:>10.3}ms {target}: {args}", l.tag());
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, args: std::fmt::Arguments<'_>) {
    log(Level::Error, target, args);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, args: std::fmt::Arguments<'_>) {
    log(Level::Warn, target, args);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, args: std::fmt::Arguments<'_>) {
    log(Level::Info, target, args);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, args: std::fmt::Arguments<'_>) {
    log(Level::Debug, target, args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_correctly() {
        set_level(Some(Level::Info));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(None);
        assert!(!enabled(Level::Error));
        assert_eq!(level(), None);
        set_level(Some(Level::Debug));
        assert_eq!(level(), Some(Level::Debug));
        set_level(None);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!(parse_level("ERROR"), Some(Level::Error));
        assert_eq!(parse_level("warning"), Some(Level::Warn));
        assert_eq!(parse_level(" info "), Some(Level::Info));
        assert_eq!(parse_level("trace"), Some(Level::Debug));
        assert_eq!(parse_level("off"), None);
        assert_eq!(parse_level(""), None);
    }
}
