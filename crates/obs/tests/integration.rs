//! Cross-crate integration tests (dev-dependencies only): deterministic
//! snapshot merging across `btb-par` worker counts, histogram
//! bucket-boundary edge cases, and Perfetto export round-tripping through
//! the `btb-store` JSON parser — the same parser CI uses to validate
//! exported traces.

use btb_obs::{chrome_trace_json, HistogramValue, Registry, Snapshot, TraceBuffer};
use btb_store::JsonValue;

/// A deterministic per-job workload: every seed produces a different but
/// reproducible mix of counter adds, gauge samples and histogram records.
fn worker_snapshot(seed: u64) -> Snapshot {
    let mut reg = Registry::new();
    let c = reg.counter("work.items");
    let g = reg.gauge("work.level");
    let h = reg.histogram("work.cost", &[2, 4, 8]);
    for i in 0..(8 + seed % 5) {
        reg.add(c, 1 + (seed ^ i) % 3);
        reg.set(g, ((seed * 31 + i * 7) % 100) as f64);
        reg.record(h, (seed + i * 3) % 12);
    }
    reg.snapshot()
}

/// The aggregate folded from `ordered_map` results must be identical at
/// 1, 2 and 4 workers, and equal to the purely sequential ground truth:
/// merging in submission order makes worker scheduling unobservable.
#[test]
fn merge_is_deterministic_across_worker_counts() {
    let jobs: Vec<u64> = (0..24).collect();
    let mut expect = Snapshot::default();
    for &seed in &jobs {
        expect.merge(&worker_snapshot(seed));
    }

    for workers in [1usize, 2, 4] {
        btb_par::set_threads(Some(workers));
        let snaps = btb_par::ordered_map(&jobs, |_, &seed| worker_snapshot(seed));
        let mut agg = Snapshot::default();
        for s in &snaps {
            agg.merge(s);
        }
        assert_eq!(
            agg, expect,
            "aggregate at {workers} workers differs from sequential fold"
        );
    }
    btb_par::set_threads(None);
}

#[test]
fn histogram_bucket_boundaries_are_inclusive_upper() {
    let mut h = HistogramValue::new(&[4, 8, 16]);
    // Exactly two values per bucket, each pair probing its boundary:
    // `<=4` gets {0, 4}, `<=8` gets {5, 8}, `<=16` gets {9, 16},
    // overflow gets {17, 1000}.
    for v in [0, 4, 5, 8, 9, 16, 17, 1000] {
        h.record(v);
    }
    assert_eq!(h.counts, vec![2, 2, 2, 2]);
    assert_eq!(h.bucket_index(4), 0, "bound value lands in its own bucket");
    assert_eq!(h.bucket_index(5), 1, "bound + 1 spills to the next bucket");
    assert_eq!(h.bucket_index(16), 2);
    assert_eq!(h.bucket_index(17), 3, "past the last bound is overflow");
    assert_eq!((h.count, h.min, h.max), (8, 0, 1000));
    assert_eq!(h.sum, 1059);

    // Merging with different bounds is refused and leaves `h` untouched.
    let other = HistogramValue::new(&[4, 8]);
    assert!(!h.merge(&other));
    assert_eq!(h.counts, vec![2, 2, 2, 2]);
}

#[test]
fn perfetto_export_round_trips_through_store_parser() {
    let mut buf = TraceBuffer::new(100);
    // Track name exercising the escaper: quotes, backslash, newline.
    let t = buf.track("frontend \"fast\\slow\" path\n");
    buf.span(t, "resteer.misfetch", 10, 5);
    buf.instant(t, "warmup.end", 12);
    buf.counter(t, "ftq.occupancy", 13, 7);

    let json = chrome_trace_json(&buf, "cfg / wl");
    let parsed = JsonValue::parse(&json).expect("export must parse");

    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    // Process-name metadata + (thread_name, thread_sort_index) for the
    // one track + the three payload events.
    assert_eq!(events.len(), 6);
    let phase_count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some(ph))
            .count()
    };
    assert_eq!(phase_count("M"), 3);
    assert_eq!(phase_count("X"), 1);
    assert_eq!(phase_count("i"), 1);
    assert_eq!(phase_count("C"), 1);

    // The escaped track name survives the round trip verbatim.
    let thread_name = events
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("thread_name"))
        .and_then(|e| e.get("args"))
        .and_then(|a| a.get("name"))
        .and_then(JsonValue::as_str)
        .expect("thread_name metadata");
    assert_eq!(thread_name, "frontend \"fast\\slow\" path\n");

    let span = events
        .iter()
        .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .expect("span event");
    assert_eq!(span.get("ts").and_then(JsonValue::as_f64), Some(10.0));
    assert_eq!(span.get("dur").and_then(JsonValue::as_f64), Some(5.0));

    let other = parsed.get("otherData").expect("otherData");
    assert_eq!(
        other.get("clock_domain").and_then(JsonValue::as_str),
        Some("cycles")
    );
    assert_eq!(
        other.get("dropped_events").and_then(JsonValue::as_f64),
        Some(0.0)
    );
}
