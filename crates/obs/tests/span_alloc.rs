//! Allocation budget for wall-clock span tracing.
//!
//! The tentpole claim is "zero overhead when off, bounded overhead when
//! on". This test pins both halves with a counting global allocator
//! (same technique as `btb-sim`'s `zero_alloc` test):
//!
//! * tracing **off**: `enter`/drop and the recording helpers perform
//!   zero allocations;
//! * tracing **on**, steady state (ring pre-allocated, thread-locals
//!   warm): recording a span performs zero marginal allocations — names
//!   are `&'static str` and spans land in pre-allocated ring slots.
//!
//! Everything runs inside one `#[test]` because a global allocator
//! counts every thread in the process.

use btb_obs::span;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn span_recording_allocation_budget() {
    // --- Off: strictly zero allocations. ---
    span::set_wall_tracing(false);
    let off = alloc_calls_during(|| {
        for _ in 0..1_000 {
            let _g = span::enter("off.span");
            span::record_since("off.post", span::now_if_enabled());
        }
    });
    assert_eq!(off, 0, "disabled tracing must not allocate (got {off})");

    // --- On, steady state: zero marginal allocations per span. ---
    span::set_wall_tracing(true);
    // Warm up: ring reserved by enable; touch thread-locals and record a
    // few spans so any one-time setup is behind us.
    {
        let _req = span::ensure_request();
        for _ in 0..16 {
            let _g = span::enter("warm.span");
        }
    }
    let on = alloc_calls_during(|| {
        let _req = span::ensure_request();
        for _ in 0..1_000 {
            let _g = span::enter("hot.span");
        }
        let t = span::now_if_enabled();
        span::record_since("hot.post", t);
    });
    span::set_wall_tracing(false);
    span::reset_wall_spans();
    assert_eq!(
        on, 0,
        "steady-state span recording must not allocate (got {on})"
    );
}
