//! Reference-model tests for the predictor substrates: the folded history
//! must equal a naive bit-vector fold, and the RAS must match a plain stack.

use btb_bpred::{GlobalHistory, ReturnAddressStack};
use proptest::prelude::*;

/// Naive reference: keep all outcomes in a Vec, fold by chunking.
fn reference_fold(bits: &[bool], len: usize, out_bits: usize) -> u64 {
    let mut acc = 0u64;
    let take: Vec<&bool> = bits.iter().rev().take(len).collect();
    for (i, b) in take.iter().enumerate() {
        if **b {
            acc ^= 1u64 << (i % out_bits);
        }
    }
    acc & ((1u64 << out_bits) - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fold_matches_reference(
        outcomes in proptest::collection::vec(any::<bool>(), 0..256),
        len in 1usize..=232,
        out_bits in 4usize..=20,
    ) {
        let mut h = GlobalHistory::new();
        for &b in &outcomes {
            h.push(b);
        }
        prop_assert_eq!(
            h.fold(len, out_bits),
            reference_fold(&outcomes, len, out_bits),
            "len {} out {}",
            len,
            out_bits
        );
    }

    #[test]
    fn ras_matches_reference_stack(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..200),
    ) {
        let capacity = 16;
        let mut ras = ReturnAddressStack::new(capacity);
        let mut model: Vec<u64> = Vec::new();
        for (is_push, val) in ops {
            if is_push {
                ras.push(val);
                model.push(val);
                if model.len() > capacity {
                    model.remove(0); // overflow drops the oldest
                }
            } else {
                let got = ras.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(ras.depth(), model.len());
            prop_assert_eq!(ras.peek(), model.last().copied());
        }
    }
}
