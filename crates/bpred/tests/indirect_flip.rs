//! Regression test: the `indirect_target_flip` probe kernel driven through
//! [`IndirectPredictor`], pinning the aliasing degradation of a small
//! table. A flip site that shares a predictor slot with a stable indirect
//! site drags the stable site from near-perfect to zero accuracy; a
//! paper-sized table keeps the two sites apart. The exact mispredict
//! counts are pinned so any change to the index hash or table layout
//! shows up here.

use btb_bpred::{IndirectPredictor, PathHistory};
use btb_trace::probe::{indirect_target_flip, probe_chain, ChainParams, FlipParams, ProbeKernel};
use btb_trace::{Addr, BranchKind};

const ROUNDS: usize = 8;
const EXIT: Addr = 0x9000;

/// Stable indirect site: a one-address chain of indirect jumps, each round
/// targeting its own pc (the final round exits).
const STABLE_PC: Addr = 0x1000;
/// Flip site 16 words above the stable site: aliases in a 16-entry table
/// (index mask 0xf over `pc >> 2` with an empty path history), distinct in
/// a 4096-entry table.
const FLIP_PC: Addr = STABLE_PC + 16 * 4;

fn flip_kernel() -> ProbeKernel {
    indirect_target_flip(&FlipParams {
        pc: FLIP_PC,
        targets: (0x2000, 0x3000),
        rounds: ROUNDS,
        exit: EXIT,
    })
}

fn stable_kernel() -> ProbeKernel {
    probe_chain(&ChainParams {
        addrs: vec![STABLE_PC],
        kind: BranchKind::IndirectJump,
        rounds: ROUNDS,
        exit: EXIT,
    })
}

/// The (pc, actual target) stream of a kernel's indirect jumps, in order.
fn indirect_events(kernel: &ProbeKernel) -> Vec<(Addr, Addr)> {
    kernel
        .trace
        .records
        .iter()
        .filter(|r| r.branch_kind() == Some(BranchKind::IndirectJump))
        .map(|r| (r.pc, r.target))
        .collect()
}

/// Replays interleaved event streams (round-robin, one event from each
/// stream per round) against a predictor with an empty path history, so
/// only pc aliasing is in play. Returns per-stream mispredict counts.
fn replay_interleaved(pred: &mut IndirectPredictor, streams: &[Vec<(Addr, Addr)>]) -> Vec<usize> {
    let path = PathHistory::new();
    let rounds = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut mispredicts = vec![0usize; streams.len()];
    for round in 0..rounds {
        for (s, stream) in streams.iter().enumerate() {
            let Some(&(pc, actual)) = stream.get(round) else {
                continue;
            };
            if pred.predict(pc, &path) != Some(actual) {
                mispredicts[s] += 1;
            }
            pred.update(pc, &path, actual);
        }
    }
    mispredicts
}

#[test]
fn kernels_are_well_formed() {
    flip_kernel().validate().expect("valid flip kernel");
    stable_kernel().validate().expect("valid stable chain");
    assert_eq!(indirect_events(&flip_kernel()).len(), ROUNDS);
    assert_eq!(indirect_events(&stable_kernel()).len(), ROUNDS);
}

#[test]
fn flip_site_defeats_last_target_prediction_everywhere() {
    // An alternating site mispredicts every round under last-target
    // prediction, at any table size: the cold miss plus 7 flips.
    for entries in [16, 4096] {
        let mut pred = IndirectPredictor::new(entries);
        let misses = replay_interleaved(&mut pred, &[indirect_events(&flip_kernel())]);
        assert_eq!(misses, vec![ROUNDS], "table with {entries} entries");
    }
}

#[test]
fn paper_sized_table_keeps_the_sites_apart() {
    let mut pred = IndirectPredictor::new(4096);
    let misses = replay_interleaved(
        &mut pred,
        &[
            indirect_events(&flip_kernel()),
            indirect_events(&stable_kernel()),
        ],
    );
    // Flip site: all 8 rounds mispredict. Stable site: only the cold miss
    // and the final round's exit target.
    assert_eq!(misses, vec![ROUNDS, 2]);
}

#[test]
fn aliasing_drags_the_stable_site_to_zero_accuracy() {
    let mut pred = IndirectPredictor::new(16);
    let misses = replay_interleaved(
        &mut pred,
        &[
            indirect_events(&flip_kernel()),
            indirect_events(&stable_kernel()),
        ],
    );
    // Both sites hash to one slot: every stable-site lookup sees the flip
    // site's last target, so the stable site never predicts correctly.
    assert_eq!(misses, vec![ROUNDS, ROUNDS]);
}

#[test]
fn first_aliased_lookup_is_a_false_hit() {
    // The interference is a false hit, not a cold miss: before the stable
    // site ever updates, the alias already returns the flip site's target.
    let mut pred = IndirectPredictor::new(16);
    let path = PathHistory::new();
    let (pc, target) = indirect_events(&flip_kernel())[0];
    pred.update(pc, &path, target);
    assert_eq!(pred.predict(STABLE_PC, &path), Some(0x2000));

    // A paper-sized table stays cold at the other site instead.
    let mut big = IndirectPredictor::new(4096);
    big.update(pc, &path, target);
    assert_eq!(big.predict(STABLE_PC, &path), None);
}
