//! Bimodal (2-bit saturating counter) direction predictor — the ablation
//! baseline contrasted against the hashed perceptron.

/// A PC-indexed table of 2-bit saturating counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Bimodal {
    counters: Vec<u8>,
    mask: usize,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters (rounded up to a
    /// power of two), initialized weakly not-taken.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Bimodal {
            counters: vec![1; n],
            mask: n - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts the branch direction.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Updates with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_bias() {
        let mut b = Bimodal::new(256);
        for _ in 0..4 {
            b.update(0x40, true);
        }
        assert!(b.predict(0x40));
        for _ in 0..4 {
            b.update(0x40, false);
        }
        assert!(!b.predict(0x40));
    }

    #[test]
    fn hysteresis_tolerates_single_flip() {
        let mut b = Bimodal::new(256);
        for _ in 0..4 {
            b.update(0x80, true);
        }
        b.update(0x80, false); // one anomaly
        assert!(b.predict(0x80), "2-bit counter should not flip on one miss");
    }

    #[test]
    fn cannot_learn_alternating() {
        // The classic bimodal weakness: a strict T/N alternation.
        let mut b = Bimodal::new(256);
        let mut correct = 0;
        for i in 0..1000u64 {
            let taken = i % 2 == 0;
            if b.predict(0x100) == taken {
                correct += 1;
            }
            b.update(0x100, taken);
        }
        assert!(correct < 700, "bimodal should struggle: {correct}/1000");
    }
}
