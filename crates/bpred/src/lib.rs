//! Branch prediction substrates for the `btb-orgs` simulator.
//!
//! Implements the prediction structures of the paper's Table 1:
//!
//! * [`HashedPerceptron`] — 64 KB hashed perceptron (16 tables × 4K × 8-bit
//!   weights, 0–232 bit geometric histories), scalable for the Fig. 11b
//!   predictor-size sweep;
//! * [`IndirectPredictor`] — 4K-entry gshare-like indirect target predictor;
//! * [`ReturnAddressStack`] — 64-entry RAS;
//! * [`Bimodal`] — a 2-bit-counter baseline used in ablations.
//!
//! # Example
//! ```
//! use btb_bpred::{GlobalHistory, HashedPerceptron, PerceptronConfig};
//!
//! let mut predictor = HashedPerceptron::new(PerceptronConfig::paper());
//! let mut history = GlobalHistory::new();
//! let out = predictor.predict(0x4000, &history);
//! predictor.update(0x4000, &history, out, true);
//! history.push(true);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bimodal;
mod history;
mod indirect;
mod perceptron;
mod ras;

pub use bimodal::Bimodal;
pub use history::{GlobalHistory, PathHistory, MAX_HISTORY_BITS};
pub use indirect::IndirectPredictor;
pub use perceptron::{
    history_lengths, HashedPerceptron, PerceptronConfig, PerceptronOutput, MAX_HISTORY, NUM_TABLES,
};
pub use ras::ReturnAddressStack;
