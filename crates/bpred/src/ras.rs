//! Return Address Stack (Table 1: 64 entries).

use btb_trace::Addr;

/// A fixed-capacity circular return address stack.
///
/// On overflow the oldest entry is silently overwritten (wrap-around), as in
/// real hardware; on underflow [`ReturnAddressStack::pop`] returns `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// The paper's 64-entry configuration.
    #[must_use]
    pub fn paper() -> Self {
        ReturnAddressStack::new(64)
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<Addr> {
        if self.depth == 0 {
            return None;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(v)
    }

    /// Peeks at the predicted return address without popping.
    #[must_use]
    pub fn peek(&self) -> Option<Addr> {
        if self.depth == 0 {
            None
        } else {
            Some(self.entries[self.top])
        }
    }

    /// Peeks at the `n`-th entry from the top (0 = top) without popping;
    /// used by speculative-plan overlays that have consumed `n` returns.
    #[must_use]
    pub fn peek_nth(&self, n: usize) -> Option<Addr> {
        if n >= self.depth {
            return None;
        }
        let idx = (self.top + self.entries.len() - n) % self.entries.len();
        Some(self.entries[idx])
    }

    /// Current number of live entries.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity of the stack.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x42);
        assert_eq!(ras.peek(), Some(0x42));
        assert_eq!(ras.depth(), 1);
        assert_eq!(ras.pop(), Some(0x42));
        assert_eq!(ras.peek(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn deep_call_chains_within_capacity_are_exact() {
        let mut ras = ReturnAddressStack::paper();
        for i in 0..60u64 {
            ras.push(0x1000 + i * 4);
        }
        for i in (0..60u64).rev() {
            assert_eq!(ras.pop(), Some(0x1000 + i * 4));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }

    #[test]
    fn depth_saturates_at_capacity_across_multiple_wraps() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 0..11u64 {
            ras.push(i);
            assert!(ras.depth() <= ras.capacity());
        }
        assert_eq!(ras.depth(), 4);
        // Only the 4 newest survive, in LIFO order; underflow after them.
        for expect in [10, 9, 8, 7] {
            assert_eq!(ras.pop(), Some(expect));
        }
        assert_eq!(ras.pop(), None);
        assert_eq!(ras.depth(), 0);
    }

    #[test]
    fn underflow_then_reuse_is_clean() {
        let mut ras = ReturnAddressStack::new(2);
        assert_eq!(ras.pop(), None);
        ras.push(0xa);
        assert_eq!(ras.pop(), Some(0xa));
        assert_eq!(ras.pop(), None);
        assert_eq!(ras.pop(), None); // repeated underflow stays None
        ras.push(0xb);
        ras.push(0xc);
        ras.push(0xd); // wrap: 0xb lost
        assert_eq!(ras.pop(), Some(0xd));
        assert_eq!(ras.pop(), Some(0xc));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_nth_walks_from_top_and_bounds_at_depth() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.peek_nth(0), Some(3));
        assert_eq!(ras.peek_nth(1), Some(2));
        assert_eq!(ras.peek_nth(2), Some(1));
        assert_eq!(ras.peek_nth(3), None); // beyond depth
        assert_eq!(ras.depth(), 3); // peeks never pop
    }

    #[test]
    fn peek_nth_is_correct_across_the_wrap_boundary() {
        let mut ras = ReturnAddressStack::new(3);
        for i in 1..=5u64 {
            ras.push(i); // final buffer holds 3, 4, 5 with top wrapped
        }
        assert_eq!(ras.peek_nth(0), Some(5));
        assert_eq!(ras.peek_nth(1), Some(4));
        assert_eq!(ras.peek_nth(2), Some(3));
        assert_eq!(ras.peek_nth(3), None);
    }
}
