//! Global branch history: a long shift register with XOR-folding helpers
//! used to index history-based predictor tables.

/// Maximum history length supported, matching the paper's 0–232 bit
/// perceptron histories.
pub const MAX_HISTORY_BITS: usize = 256;

const WORDS: usize = MAX_HISTORY_BITS / 64;

/// A global history register of up to [`MAX_HISTORY_BITS`] outcomes,
/// most-recent outcome in bit 0.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalHistory {
    words: [u64; WORDS],
}

impl GlobalHistory {
    /// Creates an all-zero (not-taken) history.
    #[must_use]
    pub fn new() -> Self {
        GlobalHistory::default()
    }

    /// Shifts in one outcome (true = taken) as the most recent bit.
    pub fn push(&mut self, taken: bool) {
        let mut carry = u64::from(taken);
        for w in &mut self.words {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
    }

    /// Returns the most recent `n` bits (`n <= 64`) as an integer.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    #[must_use]
    pub fn recent(&self, n: usize) -> u64 {
        assert!(n <= 64, "recent() supports at most 64 bits");
        if n == 0 {
            0
        } else {
            self.words[0] & (u64::MAX >> (64 - n))
        }
    }

    /// XOR-folds the most recent `len` history bits down to `out_bits` bits.
    ///
    /// This is the classic folded-history indexing used by geometric-history
    /// predictors: the history is split into `out_bits`-wide chunks which are
    /// XORed together.
    ///
    /// # Panics
    /// Panics if `out_bits` is 0 or greater than 32, or if `len` exceeds
    /// [`MAX_HISTORY_BITS`].
    #[must_use]
    pub fn fold(&self, len: usize, out_bits: usize) -> u64 {
        assert!(out_bits > 0 && out_bits <= 32, "fold width out of range");
        assert!(len <= MAX_HISTORY_BITS, "history length out of range");
        if len == 0 {
            return 0;
        }
        let mask = (1u64 << out_bits) - 1;
        // Extract the widest multiple of `out_bits` that fits in one u64 per
        // step, then XOR-collapse the wide word down to `out_bits`. Because
        // `wide` is a multiple of `out_bits`, the chunk boundaries coincide
        // with the ones the definition above prescribes, and XOR is
        // associative — so this computes exactly the same fold with ~5x
        // fewer history extractions (this runs 16x per perceptron lookup).
        let wide = (64 / out_bits) * out_bits;
        let mut acc = 0u64;
        let mut consumed = 0usize;
        while consumed < len {
            let take = (len - consumed).min(wide);
            acc ^= self.bits_at(consumed, take);
            consumed += take;
        }
        let mut folded = 0u64;
        while acc != 0 {
            folded ^= acc & mask;
            acc >>= out_bits;
        }
        folded
    }

    /// Extracts `count` bits starting `offset` bits back in history.
    fn bits_at(&self, offset: usize, count: usize) -> u64 {
        debug_assert!(count <= 64);
        let word = offset / 64;
        let bit = offset % 64;
        let mut v = self.words[word] >> bit;
        if bit != 0 && word + 1 < WORDS {
            v |= self.words[word + 1] << (64 - bit);
        }
        if count == 64 {
            v
        } else {
            v & ((1u64 << count) - 1)
        }
    }
}

/// A path-history register: hashes of recent taken-branch targets, used by
/// the indirect target predictor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathHistory {
    bits: u64,
}

impl PathHistory {
    /// Creates an empty path history.
    #[must_use]
    pub fn new() -> Self {
        PathHistory::default()
    }

    /// Mixes a taken-branch target into the path.
    pub fn push_target(&mut self, target: u64) {
        self.bits = (self.bits << 3) ^ (target >> 2);
    }

    /// The raw path register value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_most_recent_into_bit0() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        // bits (most recent first): 1,0,1
        assert_eq!(h.recent(3), 0b101);
    }

    #[test]
    fn history_survives_word_boundary() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..63 {
            h.push(false);
        }
        // The original 1 is now 63 bits back.
        assert_eq!(h.bits_at(63, 1), 1);
        h.push(false);
        assert_eq!(h.bits_at(64, 1), 1);
        assert_eq!(h.bits_at(63, 1), 0);
    }

    #[test]
    fn fold_of_zero_length_is_zero() {
        let mut h = GlobalHistory::new();
        h.push(true);
        assert_eq!(h.fold(0, 12), 0);
    }

    #[test]
    fn fold_differs_with_history_content() {
        let mut a = GlobalHistory::new();
        let mut b = GlobalHistory::new();
        for i in 0..100 {
            a.push(i % 3 == 0);
            b.push(i % 5 == 0);
        }
        assert_ne!(a.fold(100, 12), b.fold(100, 12));
    }

    /// The definitional fold: one `out_bits`-wide chunk at a time.
    fn fold_reference(h: &GlobalHistory, len: usize, out_bits: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let mask = (1u64 << out_bits) - 1;
        let mut acc = 0u64;
        let mut consumed = 0usize;
        while consumed < len {
            let take = (len - consumed).min(out_bits);
            acc ^= h.bits_at(consumed, take);
            consumed += take;
        }
        acc & mask
    }

    #[test]
    fn widened_fold_matches_reference() {
        let mut h = GlobalHistory::new();
        // A dense, irregular bit pattern exercising all word boundaries.
        for i in 0..MAX_HISTORY_BITS {
            h.push((i * i + i / 3) % 5 < 2);
        }
        for len in [1, 3, 11, 12, 13, 63, 64, 65, 100, 127, 128, 232, 256] {
            for out_bits in [1, 2, 5, 6, 7, 8, 11, 12, 13, 16, 31, 32] {
                assert_eq!(
                    h.fold(len, out_bits),
                    fold_reference(&h, len, out_bits),
                    "len={len} out_bits={out_bits}"
                );
            }
        }
    }

    #[test]
    fn fold_is_stable_for_same_history() {
        let mut a = GlobalHistory::new();
        for i in 0..200 {
            a.push(i % 7 < 3);
        }
        assert_eq!(a.fold(232, 12), a.fold(232, 12));
        assert!(a.fold(232, 12) < (1 << 12));
    }

    #[test]
    fn oldest_bits_fall_off() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..MAX_HISTORY_BITS {
            h.push(false);
        }
        // Every addressable bit is now zero.
        assert_eq!(h.fold(MAX_HISTORY_BITS, 16), 0);
    }

    #[test]
    fn path_history_mixes_targets() {
        let mut p = PathHistory::new();
        p.push_target(0x1000);
        let v1 = p.value();
        p.push_target(0x2000);
        assert_ne!(p.value(), v1);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn recent_panics_beyond_64() {
        let h = GlobalHistory::new();
        let _ = h.recent(65);
    }
}
