//! Indirect branch target predictor: a 4K-entry gshare-like table indexed by
//! the branch PC hashed with path history (Table 1 of the paper).

use crate::history::PathHistory;
use btb_trace::Addr;

/// A gshare-like indirect target predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectPredictor {
    /// Path-history-indexed target table.
    table: Vec<Addr>,
    /// PC-indexed fallback (captures monomorphic sites before history warms).
    pc_table: Vec<Addr>,
    mask: usize,
}

impl IndirectPredictor {
    /// Creates a predictor with `entries` slots (rounded up to a power of
    /// two). The paper uses 4K entries.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        IndirectPredictor {
            table: vec![0; n],
            pc_table: vec![0; n],
            mask: n - 1,
        }
    }

    /// The paper's 4K-entry configuration.
    #[must_use]
    pub fn paper() -> Self {
        IndirectPredictor::new(4096)
    }

    fn index(&self, pc: Addr, path: &PathHistory) -> usize {
        let h = (pc >> 2) ^ path.value() ^ (path.value() >> 13);
        (h as usize) & self.mask
    }

    fn pc_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts the target of the indirect branch at `pc`. Returns `None`
    /// when no target has been recorded for either index.
    #[must_use]
    pub fn predict(&self, pc: Addr, path: &PathHistory) -> Option<Addr> {
        let t = self.table[self.index(pc, path)];
        if t != 0 {
            return Some(t);
        }
        let f = self.pc_table[self.pc_index(pc)];
        if f != 0 {
            Some(f)
        } else {
            None
        }
    }

    /// Records the actual target of the indirect branch at `pc`.
    pub fn update(&mut self, pc: Addr, path: &PathHistory, target: Addr) {
        let idx = self.index(pc, path);
        self.table[idx] = target;
        let pidx = self.pc_index(pc);
        self.pc_table[pidx] = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_predicts_nothing() {
        let p = IndirectPredictor::new(64);
        assert_eq!(p.predict(0x1234, &PathHistory::new()), None);
    }

    #[test]
    fn monomorphic_site_is_learned() {
        let mut p = IndirectPredictor::new(1024);
        let mut path = PathHistory::new();
        for i in 0..20 {
            p.update(0x4000, &path, 0x9000);
            path.push_target(0x9000 + i);
        }
        assert_eq!(p.predict(0x4000, &path), Some(0x9000));
    }

    #[test]
    fn path_correlated_targets_are_separated() {
        let mut p = IndirectPredictor::new(4096);
        let mut path_a = PathHistory::new();
        path_a.push_target(0xaaa0);
        let mut path_b = PathHistory::new();
        path_b.push_target(0xbbb0);
        p.update(0x4000, &path_a, 0x1111_0000);
        p.update(0x4000, &path_b, 0x2222_0000);
        assert_eq!(p.predict(0x4000, &path_a), Some(0x1111_0000));
        assert_eq!(p.predict(0x4000, &path_b), Some(0x2222_0000));
    }

    #[test]
    fn fallback_covers_cold_paths() {
        let mut p = IndirectPredictor::new(4096);
        let mut warm = PathHistory::new();
        warm.push_target(0x1000);
        p.update(0x8000, &warm, 0x5000);
        // Different, never-seen path: the PC fallback still knows the target.
        let mut cold = PathHistory::new();
        cold.push_target(0x7777_7777);
        assert_eq!(p.predict(0x8000, &cold), Some(0x5000));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let p = IndirectPredictor::new(100);
        assert_eq!(p.table.len(), 128);
    }

    #[test]
    fn aliased_pcs_share_one_entry() {
        // With 16 entries (mask 15) and an empty path history, PCs whose
        // word addresses differ by a multiple of 16 hash to the same slot
        // in both the path-indexed table and the PC fallback.
        let mut p = IndirectPredictor::new(16);
        let path = PathHistory::new();
        let pc_a = 0x100;
        let pc_b = pc_a + 16 * 4;
        p.update(pc_a, &path, 0x5000);
        // False hit: the alias sees A's target before ever updating.
        assert_eq!(p.predict(pc_b, &path), Some(0x5000));
        // Destructive interference: B's update evicts A's target.
        p.update(pc_b, &path, 0x6000);
        assert_eq!(p.predict(pc_a, &path), Some(0x6000));
    }

    #[test]
    fn distinct_paths_dealias_conflicting_pcs() {
        // The same two aliasing PCs separate once their path histories
        // differ, because the path hash perturbs the index.
        let mut p = IndirectPredictor::new(16);
        let mut path_a = PathHistory::new();
        path_a.push_target(0x1230);
        let mut path_b = PathHistory::new();
        path_b.push_target(0x4560);
        let pc_a = 0x100;
        let pc_b = pc_a + 16 * 4;
        p.update(pc_a, &path_a, 0x5000);
        p.update(pc_b, &path_b, 0x6000);
        assert_eq!(p.predict(pc_a, &path_a), Some(0x5000));
        assert_eq!(p.predict(pc_b, &path_b), Some(0x6000));
    }

    #[test]
    fn zero_target_is_the_empty_sentinel() {
        // Address 0 doubles as "no entry": recording it leaves the
        // predictor cold rather than predicting target 0.
        let mut p = IndirectPredictor::new(64);
        let path = PathHistory::new();
        p.update(0x2000, &path, 0);
        assert_eq!(p.predict(0x2000, &path), None);
    }
}
