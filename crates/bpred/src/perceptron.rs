//! Hashed perceptron conditional branch predictor.
//!
//! Models the paper's Table 1 configuration: a 64 KB hashed perceptron with
//! 16 tables of 4K 8-bit weights indexed with geometric history lengths from
//! 0 to 232 bits, with adaptive-threshold training (Jiménez & Lin-style
//! perceptron learning over hashed feature tables). The table size scales
//! down for the Fig. 11b predictor-size sweep.

use crate::history::GlobalHistory;

/// Number of feature tables.
pub const NUM_TABLES: usize = 16;
/// Longest history length in bits (paper: 0–232).
pub const MAX_HISTORY: usize = 232;

/// Configuration of a [`HashedPerceptron`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Entries per feature table (power of two).
    pub entries_per_table: usize,
}

impl PerceptronConfig {
    /// The paper's 64 KB configuration (16 tables × 4K × 8-bit weights).
    #[must_use]
    pub fn paper() -> Self {
        PerceptronConfig {
            entries_per_table: 4096,
        }
    }

    /// A configuration using `kb` kilobytes of weight storage, as swept in
    /// Fig. 11b (64, 32, 16, 8, 4, 2 KB).
    ///
    /// # Panics
    /// Panics if `kb` is zero.
    #[must_use]
    pub fn with_size_kb(kb: usize) -> Self {
        assert!(kb > 0, "predictor size must be non-zero");
        let entries = (kb * 1024 / NUM_TABLES).next_power_of_two();
        PerceptronConfig {
            entries_per_table: entries.max(64),
        }
    }

    /// Total weight storage in bytes.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.entries_per_table * NUM_TABLES
    }
}

/// The geometric history lengths assigned to each table (table 0 is the
/// history-less bias table).
#[must_use]
pub fn history_lengths() -> [usize; NUM_TABLES] {
    let mut lens = [0usize; NUM_TABLES];
    // Geometric progression from 3 to MAX_HISTORY across tables 1..16.
    let ratio = (MAX_HISTORY as f64 / 3.0).powf(1.0 / (NUM_TABLES - 2) as f64);
    for (i, l) in lens.iter_mut().enumerate().skip(1) {
        *l = (3.0 * ratio.powi(i as i32 - 1)).round() as usize;
    }
    lens[NUM_TABLES - 1] = MAX_HISTORY;
    lens
}

/// Hashed perceptron direction predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct HashedPerceptron {
    tables: Vec<Vec<i8>>,
    lens: [usize; NUM_TABLES],
    index_bits: usize,
    /// Adaptive training threshold (O-GEHL style).
    theta: i32,
    /// Threshold-adaptation counter.
    tc: i32,
}

/// The outcome of a perceptron lookup, retained for update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronOutput {
    /// Predicted direction.
    pub taken: bool,
    /// The summed dot product (confidence).
    pub sum: i32,
}

impl HashedPerceptron {
    /// Creates a predictor with the given configuration.
    ///
    /// # Examples
    /// ```
    /// use btb_bpred::{HashedPerceptron, PerceptronConfig};
    /// let p = HashedPerceptron::new(PerceptronConfig::paper());
    /// assert_eq!(p.storage_bytes(), 64 * 1024);
    /// ```
    #[must_use]
    pub fn new(config: PerceptronConfig) -> Self {
        let entries = config.entries_per_table.next_power_of_two().max(64);
        HashedPerceptron {
            tables: vec![vec![0i8; entries]; NUM_TABLES],
            lens: history_lengths(),
            index_bits: entries.trailing_zeros() as usize,
            theta: (1.93 * NUM_TABLES as f64 + 14.0) as i32,
            tc: 0,
        }
    }

    /// Total weight storage in bytes.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.tables[0].len() * NUM_TABLES
    }

    fn index(&self, table: usize, pc: u64, hist: &GlobalHistory) -> usize {
        let len = self.lens[table];
        let folded = if len == 0 {
            0
        } else {
            hist.fold(len, self.index_bits.min(32))
        };
        // Mix the PC with a table-specific multiplier so tables decorrelate.
        let pc_hash =
            (pc >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15u64.wrapping_add(table as u64 * 2));
        ((pc_hash ^ folded ^ (folded << 1)) as usize) & ((1 << self.index_bits) - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64, hist: &GlobalHistory) -> PerceptronOutput {
        let mut sum = 0i32;
        for t in 0..NUM_TABLES {
            sum += i32::from(self.tables[t][self.index(t, pc, hist)]);
        }
        PerceptronOutput {
            // Ties default to not-taken: cold branches are far more often
            // never-taken error checks than taken branches.
            taken: sum > 0,
            sum,
        }
    }

    /// Retire-time predict-then-train in one pass: returns exactly what
    /// [`Self::predict`] would, then trains exactly as [`Self::update`]
    /// would — but computes each table index once instead of twice. The
    /// folded-history indexing dominates both operations, so the combined
    /// path roughly halves the predictor's retire cost.
    pub fn predict_and_train(
        &mut self,
        pc: u64,
        hist: &GlobalHistory,
        taken: bool,
    ) -> PerceptronOutput {
        let mut indices = [0usize; NUM_TABLES];
        let mut sum = 0i32;
        for (t, slot) in indices.iter_mut().enumerate() {
            let idx = self.index(t, pc, hist);
            *slot = idx;
            sum += i32::from(self.tables[t][idx]);
        }
        let output = PerceptronOutput {
            taken: sum > 0,
            sum,
        };
        let mispredicted = output.taken != taken;
        if mispredicted || output.sum.abs() <= self.theta {
            for (t, &idx) in indices.iter().enumerate() {
                let w = &mut self.tables[t][idx];
                *w = if taken {
                    w.saturating_add(1)
                } else {
                    w.saturating_sub(1)
                };
            }
        }
        if mispredicted {
            self.tc += 1;
            if self.tc >= 64 {
                self.tc = 0;
                self.theta += 1;
            }
        } else if output.sum.abs() <= self.theta {
            self.tc -= 1;
            if self.tc <= -64 {
                self.tc = 0;
                self.theta = (self.theta - 1).max(1);
            }
        }
        output
    }

    /// Trains the predictor with the actual outcome. `output` must be the
    /// value returned by [`Self::predict`] for the same branch and history.
    pub fn update(&mut self, pc: u64, hist: &GlobalHistory, output: PerceptronOutput, taken: bool) {
        let mispredicted = output.taken != taken;
        if mispredicted || output.sum.abs() <= self.theta {
            for t in 0..NUM_TABLES {
                let idx = self.index(t, pc, hist);
                let w = &mut self.tables[t][idx];
                *w = if taken {
                    w.saturating_add(1)
                } else {
                    w.saturating_sub(1)
                };
            }
        }
        // Adaptive threshold (Seznec's O-GEHL TC scheme).
        if mispredicted {
            self.tc += 1;
            if self.tc >= 64 {
                self.tc = 0;
                self.theta += 1;
            }
        } else if output.sum.abs() <= self.theta {
            self.tc -= 1;
            if self.tc <= -64 {
                self.tc = 0;
                self.theta = (self.theta - 1).max(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern<F: FnMut(u64) -> bool>(p: &mut HashedPerceptron, n: usize, mut f: F) -> f64 {
        let mut hist = GlobalHistory::new();
        let mut correct = 0usize;
        for i in 0..n {
            let pc = 0x4000 + (i as u64 % 7) * 4;
            let taken = f(i as u64);
            let out = p.predict(pc, &hist);
            if out.taken == taken {
                correct += 1;
            }
            p.update(pc, &hist, out, taken);
            hist.push(taken);
        }
        correct as f64 / n as f64
    }

    #[test]
    fn history_lengths_are_monotone_and_bounded() {
        let lens = history_lengths();
        assert_eq!(lens[0], 0);
        assert_eq!(lens[NUM_TABLES - 1], MAX_HISTORY);
        for w in lens.windows(2) {
            assert!(w[0] <= w[1], "{lens:?}");
        }
    }

    #[test]
    fn predict_and_train_matches_split_predict_update() {
        let mut split = HashedPerceptron::new(PerceptronConfig::paper());
        let mut fused = HashedPerceptron::new(PerceptronConfig::paper());
        let mut hist = GlobalHistory::new();
        for i in 0..5000u64 {
            let pc = 0x4000 + (i % 13) * 4;
            let taken = (i / 5) % 3 != 0;
            let a = split.predict(pc, &hist);
            split.update(pc, &hist, a, taken);
            let b = fused.predict_and_train(pc, &hist, taken);
            assert_eq!(a, b, "outputs diverged at step {i}");
            hist.push(taken);
        }
        assert_eq!(split.theta, fused.theta);
        assert_eq!(split.tc, fused.tc);
        assert_eq!(split.tables, fused.tables);
    }

    #[test]
    fn learns_always_taken() {
        let mut p = HashedPerceptron::new(PerceptronConfig::paper());
        let acc = run_pattern(&mut p, 4000, |_| true);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut p = HashedPerceptron::new(PerceptronConfig::paper());
        let acc = run_pattern(&mut p, 8000, |i| i % 2 == 0);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_short_loop_exits() {
        // A 5-iteration loop: T T T T N repeated — classic history pattern.
        let mut p = HashedPerceptron::new(PerceptronConfig::paper());
        let acc = run_pattern(&mut p, 10_000, |i| i % 5 != 4);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn small_predictor_is_worse_on_many_branches() {
        // With many distinct branches and long patterns, a 2 KB predictor
        // should alias more and lose accuracy vs the 64 KB one.
        let mut big = HashedPerceptron::new(PerceptronConfig::with_size_kb(64));
        let mut small = HashedPerceptron::new(PerceptronConfig::with_size_kb(2));
        let gen = |i: u64| (i / 3) % 7 < 3;
        let acc = |p: &mut HashedPerceptron| {
            let mut hist = GlobalHistory::new();
            let mut correct = 0usize;
            let n = 30_000;
            for i in 0..n {
                // 2048 distinct branch PCs.
                let pc = 0x10_0000 + (i as u64 * 97 % 2048) * 4;
                let taken = gen(i as u64);
                let out = p.predict(pc, &hist);
                if out.taken == taken {
                    correct += 1;
                }
                p.update(pc, &hist, out, taken);
                hist.push(taken);
            }
            correct as f64 / n as f64
        };
        let ab = acc(&mut big);
        let asm = acc(&mut small);
        assert!(ab >= asm, "big {ab} < small {asm}");
    }

    #[test]
    fn size_scaling_produces_expected_storage() {
        assert_eq!(PerceptronConfig::with_size_kb(64).storage_bytes(), 65536);
        assert_eq!(PerceptronConfig::with_size_kb(2).storage_bytes(), 2048);
        // Floors at 64 entries per table.
        assert!(PerceptronConfig::with_size_kb(1).entries_per_table >= 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_panics() {
        let _ = PerceptronConfig::with_size_kb(0);
    }
}
