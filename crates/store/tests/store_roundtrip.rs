//! Integration tests for the on-disk store: roundtrips, atomicity
//! observables, corruption handling, and the maintenance surface.

use btb_core::{BtbConfig, OrgKind};
use btb_sim::{PipelineConfig, SimReport, SimStats};
use btb_store::{trace_key, Digest, Kind, Store};
use btb_trace::{Trace, WorkloadProfile};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "btb-store-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_report() -> SimReport {
    SimReport {
        config_name: "I-BTB 16".to_owned(),
        workload: "web".into(),
        stats: SimStats {
            instructions: 1000,
            last_commit_cycle: 500,
            ..SimStats::default()
        },
        l1_occupancy: 0.75,
        l1_redundancy: 1.0,
        l2_occupancy: 0.5,
        l2_redundancy: 1.25,
        l1i_hit_rate: 0.99,
    }
}

fn report_key_for(profile: &WorkloadProfile, insts: usize) -> Digest {
    let cfg = BtbConfig::ideal(
        "I-BTB 16",
        OrgKind::Instruction {
            width: 16,
            skip_taken: false,
        },
    );
    Store::report_key(&trace_key(profile, insts), &cfg, &PipelineConfig::paper())
}

#[test]
fn trace_roundtrip_and_counters() {
    let dir = ScratchDir::new("trace-roundtrip");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(7);
    let trace = Trace::generate(&profile, 5_000);

    assert!(store.get_trace(&profile, 5_000).is_none(), "cold miss");
    store.put_trace(&profile, 5_000, &trace);
    assert_eq!(store.get_trace(&profile, 5_000).as_ref(), Some(&trace));
    // A different length is a different artifact.
    assert!(store.get_trace(&profile, 5_001).is_none());

    let c = store.take_counters();
    assert_eq!((c.trace_hits, c.trace_misses), (1, 2));
    assert!(store.take_counters().is_empty(), "take resets");
}

#[test]
fn report_roundtrip_is_exact() {
    let dir = ScratchDir::new("report-roundtrip");
    let store = Store::open(&dir.0).expect("open");
    let key = report_key_for(&WorkloadProfile::tiny(1), 1_000);
    let report = sample_report();

    assert!(store.get_report(&key).is_none(), "cold miss");
    store.put_report(&key, &report);
    assert_eq!(store.get_report(&key).as_ref(), Some(&report));
    let c = store.take_counters();
    assert_eq!((c.report_hits, c.report_misses), (1, 1));
}

#[test]
fn corrupted_payload_is_a_miss_and_removed() {
    let dir = ScratchDir::new("corrupt");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(3);
    let trace = Trace::generate(&profile, 2_000);
    store.put_trace(&profile, 2_000, &trace);

    // Flip one payload byte in the single stored object.
    let path = find_only_object(&dir.0);
    let mut bytes = std::fs::read(&path).expect("read object");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, bytes).expect("rewrite object");

    assert!(
        store.get_trace(&profile, 2_000).is_none(),
        "checksum mismatch must be a miss, not a panic"
    );
    assert!(!path.exists(), "corrupt entry must be unlinked");

    // The slot is reusable after corruption.
    store.put_trace(&profile, 2_000, &trace);
    assert_eq!(store.get_trace(&profile, 2_000).as_ref(), Some(&trace));
}

#[test]
fn truncated_and_garbage_objects_are_misses() {
    let dir = ScratchDir::new("garbage");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(4);
    store.put_trace(&profile, 1_500, &Trace::generate(&profile, 1_500));

    let path = find_only_object(&dir.0);
    let bytes = std::fs::read(&path).expect("read");

    // Truncated to half.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    assert!(store.get_trace(&profile, 1_500).is_none());

    // Entirely wrong contents under the right name.
    store.put_trace(&profile, 1_500, &Trace::generate(&profile, 1_500));
    let path = find_only_object(&dir.0);
    std::fs::write(&path, b"not a store object at all").expect("garbage");
    assert!(store.get_trace(&profile, 1_500).is_none());
}

#[test]
fn wrong_kind_is_a_miss() {
    let dir = ScratchDir::new("wrong-kind");
    let store = Store::open(&dir.0).expect("open");
    let key = trace_key(&WorkloadProfile::tiny(9), 800);
    // Store raw bytes under the trace key but flagged as a report.
    store
        .put_raw(&key, Kind::Report, b"payload")
        .expect("put raw");
    assert!(store.get_raw(&key, Kind::Trace).is_none());
}

#[test]
fn stats_and_gc() {
    let dir = ScratchDir::new("maintenance");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(5);
    store.put_trace(&profile, 1_000, &Trace::generate(&profile, 1_000));
    store.put_report(&report_key_for(&profile, 1_000), &sample_report());

    let stats = store.stats().expect("stats");
    assert_eq!(stats.trace_objects, 1);
    assert_eq!(stats.report_objects, 1);
    assert!(stats.trace_bytes > 0 && stats.report_bytes > 0);
    assert_eq!(stats.unreadable_objects, 0);

    // Everything is newer than an hour: a 1h sweep keeps all objects.
    let kept = store
        .gc(std::time::Duration::from_secs(3600))
        .expect("gc keep");
    assert_eq!((kept.removed_objects, kept.kept_objects), (0, 2));

    // A zero-age sweep clears the store.
    let cleared = store.gc(std::time::Duration::ZERO).expect("gc clear");
    assert_eq!((cleared.removed_objects, cleared.kept_objects), (2, 0));
    let after = store.stats().expect("stats after gc");
    assert_eq!(after.trace_objects + after.report_objects, 0);
}

#[test]
fn reopened_store_serves_existing_objects() {
    let dir = ScratchDir::new("reopen");
    let profile = WorkloadProfile::tiny(6);
    let trace = Trace::generate(&profile, 3_000);
    {
        let store = Store::open(&dir.0).expect("open");
        store.put_trace(&profile, 3_000, &trace);
    }
    let store = Store::open(&dir.0).expect("reopen");
    assert_eq!(store.get_trace(&profile, 3_000).as_ref(), Some(&trace));
}

#[test]
fn streamed_put_is_readable_by_materialized_get_and_vice_versa() {
    let dir = ScratchDir::new("stream-interop");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(8);
    let trace = Trace::generate(&profile, 4_000);

    // Stream-published object serves the materialized getter...
    let written = store
        .put_trace_stream(&profile, 4_000, &trace.name, trace.records.iter().copied())
        .expect("streamed publish");
    assert_eq!(written, trace.records.len() as u64);
    assert_eq!(store.get_trace(&profile, 4_000).as_ref(), Some(&trace));

    // ...and a materialized publish serves the streaming reader.
    let stream = store
        .open_trace_stream(&profile, 4_000)
        .expect("streamed open");
    assert_eq!(stream.name(), &*trace.name);
    let replayed: Vec<_> = stream.map(|r| r.expect("verified record")).collect();
    assert_eq!(replayed, trace.records);
}

#[test]
fn corrupt_object_never_reaches_the_streaming_reader() {
    let dir = ScratchDir::new("stream-corrupt");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(2);
    let trace = Trace::generate(&profile, 3_000);
    store
        .put_trace_stream(&profile, 3_000, &trace.name, trace.records.iter().copied())
        .expect("publish");

    // Flip a byte deep in the payload: the up-front verification pass must
    // catch it before a single record is handed out.
    let path = find_only_object(&dir.0);
    let mut bytes = std::fs::read(&path).expect("read object");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, bytes).expect("rewrite object");

    assert!(store.open_trace_stream(&profile, 3_000).is_none());
    assert!(!path.exists(), "corrupt entry must be unlinked");

    let c = store.take_counters();
    assert_eq!((c.trace_hits, c.trace_misses), (0, 1));
}

#[test]
fn failed_streamed_publish_leaves_no_object() {
    struct Explode {
        after: usize,
        profile: WorkloadProfile,
    }
    impl Iterator for Explode {
        type Item = btb_trace::TraceRecord;
        fn next(&mut self) -> Option<btb_trace::TraceRecord> {
            // Yield a few real records, then simulate a generator that
            // stops early — publishing still succeeds (a shorter trace),
            // so instead test the I/O failure path via a full tmp dir.
            if self.after == 0 {
                return None;
            }
            self.after -= 1;
            Trace::generate(&self.profile, 1).records.first().copied()
        }
    }
    // An unwritable tmp/ directory makes the streamed publish fail; the
    // object slot must stay a miss and no partial file may appear.
    let dir = ScratchDir::new("stream-fail");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(1);
    std::fs::remove_dir_all(dir.0.join("tmp")).expect("drop tmp dir");
    let result = store.put_trace_stream(
        &profile,
        100,
        "doomed",
        Explode {
            after: 3,
            profile: profile.clone(),
        },
    );
    assert!(result.is_err(), "publish into missing tmp/ must fail");
    assert!(store.open_trace_stream(&profile, 100).is_none());
}

/// Returns the path of the only object in the store (panics otherwise).
fn find_only_object(root: &std::path::Path) -> PathBuf {
    let mut found = Vec::new();
    for shard in std::fs::read_dir(root.join("objects")).expect("objects dir") {
        let shard = shard.expect("shard entry");
        if shard.file_type().expect("type").is_dir() {
            for entry in std::fs::read_dir(shard.path()).expect("shard") {
                found.push(entry.expect("entry").path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one object, got {found:?}");
    found.remove(0)
}

/// Atomic publish under contention: once a key has been published, racing
/// re-publishers (same content — the store is content-addressed) must never
/// make a reader miss or observe different bytes. A non-atomic publish
/// (write-in-place) would expose short or torn objects, which readers
/// treat as corruption: they unlink the entry and return `None`, failing
/// the always-`Some` assertion below. This is the concurrency contract the
/// PR 4 parallel `run_matrix` leans on when worker threads share a store.
#[test]
fn concurrent_writers_never_disturb_readers() {
    let dir = ScratchDir::new("concurrent");
    let store = Store::open(&dir.0).expect("open");

    // Four distinct keys, each with its own canonical report.
    let profiles: Vec<WorkloadProfile> = (0..4).map(WorkloadProfile::tiny).collect();
    let keys: Vec<Digest> = profiles.iter().map(|p| report_key_for(p, 2_000)).collect();
    let canonical: Vec<SimReport> = (0..4)
        .map(|i| {
            let mut r = sample_report();
            r.stats.instructions = 1_000 + i;
            r
        })
        .collect();
    for (k, r) in keys.iter().zip(&canonical) {
        store.put_report(k, r);
    }

    std::thread::scope(|s| {
        // Writers hammer every key with its canonical content.
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..50 {
                    for (k, r) in keys.iter().zip(&canonical) {
                        store.put_report(k, r);
                    }
                }
            });
        }
        // Readers must see every key complete and exact on every read.
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..200 {
                    for (k, want) in keys.iter().zip(&canonical) {
                        let got = store
                            .get_report(k)
                            .expect("published key missed under concurrent writers");
                        assert_eq!(&got, want, "reader observed torn/foreign bytes");
                    }
                }
            });
        }
    });

    // Every publish renamed its staging file into place; none leaked.
    let leftover: Vec<_> = std::fs::read_dir(dir.0.join("tmp"))
        .expect("tmp dir")
        .collect();
    assert!(leftover.is_empty(), "staging files leaked: {leftover:?}");
}
