//! Store behaviour under service-style load: long-lived handles, readers
//! racing `gc`, counters polled without reset, and crash-consistency of
//! the publish path. These are the guarantees `btb-serve` leans on when a
//! daemon shares one store across request workers while an operator runs
//! maintenance against the same root.

use btb_core::{BtbConfig, OrgKind};
use btb_sim::{PipelineConfig, SimReport, SimStats};
use btb_store::{trace_key, Digest, Failpoint, Store};
use btb_trace::WorkloadProfile;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "btb-store-svc-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sample_report(tag: u64) -> SimReport {
    SimReport {
        config_name: "I-BTB 16".to_owned(),
        workload: "svc".into(),
        stats: SimStats {
            instructions: 1_000 + tag,
            last_commit_cycle: 500,
            ..SimStats::default()
        },
        l1_occupancy: 0.75,
        l1_redundancy: 1.0,
        l2_occupancy: 0.5,
        l2_redundancy: 1.25,
        l1i_hit_rate: 0.99,
    }
}

fn report_key_for(profile: &WorkloadProfile, insts: usize) -> Digest {
    let cfg = BtbConfig::ideal(
        "I-BTB 16",
        OrgKind::Instruction {
            width: 16,
            skip_taken: false,
        },
    );
    Store::report_key(&trace_key(profile, insts), &cfg, &PipelineConfig::paper())
}

/// `gc` sweeping the store while readers hammer it and writers re-publish:
/// a read may *miss* (gc removed the object between publish and read — the
/// store is a cache), but every hit must return the exact canonical bytes
/// and nothing may panic. Afterwards the store must still be fully usable.
#[test]
fn gc_racing_readers_is_safe() {
    let dir = ScratchDir::new("gc-race");
    let store = Store::open(&dir.0).expect("open");

    let profiles: Vec<WorkloadProfile> = (0..4).map(WorkloadProfile::tiny).collect();
    let keys: Vec<Digest> = profiles.iter().map(|p| report_key_for(p, 2_000)).collect();
    let canonical: Vec<SimReport> = (0..4).map(|i| sample_report(i as u64)).collect();
    for (k, r) in keys.iter().zip(&canonical) {
        store.put_report(k, r);
    }

    std::thread::scope(|s| {
        // A maintenance thread clearing the store over and over.
        s.spawn(|| {
            for _ in 0..100 {
                store.gc(std::time::Duration::ZERO).expect("gc");
            }
        });
        // Writers keep re-publishing canonical content.
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..100 {
                    for (k, r) in keys.iter().zip(&canonical) {
                        store.put_report(k, r);
                    }
                }
            });
        }
        // Readers: every *hit* must be exact; misses are legal mid-gc.
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..200 {
                    for (k, want) in keys.iter().zip(&canonical) {
                        if let Some(got) = store.get_report(k) {
                            assert_eq!(&got, want, "reader observed torn/foreign bytes");
                        }
                    }
                }
            });
        }
    });

    // The store is intact after the storm: publish + read back works.
    for (k, r) in keys.iter().zip(&canonical) {
        store.put_report(k, r);
        assert_eq!(store.get_report(k).as_ref(), Some(r));
    }
}

/// A process killed mid-publish leaves a truncated staging file but no
/// visible object: readers miss cleanly, `stats` counts nothing torn in
/// `objects/`, and `gc` clears the debris. The slot then republishes.
#[test]
fn mid_publish_crash_leaves_no_torn_object_visible() {
    let dir = ScratchDir::new("crash-publish");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(11);
    let key = report_key_for(&profile, 4_000);
    let report = sample_report(7);

    // "Crash" during the first publish. put_report downgrades the error
    // to a warning, exactly as a service would keep running.
    store.inject_failpoint(Failpoint::CrashBeforeRename);
    store.put_report(&key, &report);

    // Nothing became visible: the read path misses, objects/ holds no
    // torn entry, and the debris sits in tmp/ only.
    assert!(store.get_report(&key).is_none(), "torn publish leaked");
    let stats = store.stats().expect("stats");
    assert_eq!(stats.report_objects, 0);
    assert_eq!(
        stats.unreadable_objects, 0,
        "torn object visible in objects/"
    );
    let debris: Vec<_> = std::fs::read_dir(dir.0.join("tmp"))
        .expect("tmp dir")
        .flatten()
        .collect();
    assert_eq!(debris.len(), 1, "crash must leave its staging file behind");

    // gc clears the staging debris even when every object survives.
    store.gc(std::time::Duration::from_secs(3600)).expect("gc");
    assert!(
        std::fs::read_dir(dir.0.join("tmp"))
            .expect("tmp dir")
            .next()
            .is_none(),
        "gc must clear stale staging files"
    );

    // The failpoint was one-shot: the retry publishes atomically.
    store.put_report(&key, &report);
    assert_eq!(store.get_report(&key).as_ref(), Some(&report));
}

/// `peek_counters` reports monotonic totals without disturbing the
/// resetting `take_counters` used for per-experiment deltas.
#[test]
fn peek_counters_is_non_destructive() {
    let dir = ScratchDir::new("peek");
    let store = Store::open(&dir.0).expect("open");
    let profile = WorkloadProfile::tiny(2);
    let key = report_key_for(&profile, 1_000);

    assert!(store.get_report(&key).is_none()); // miss
    store.put_report(&key, &sample_report(1));
    assert!(store.get_report(&key).is_some()); // hit

    let peek1 = store.peek_counters();
    assert_eq!((peek1.report_hits, peek1.report_misses), (1, 1));
    // Peeking again sees the same totals — nothing was reset.
    assert_eq!(store.peek_counters(), peek1);

    // take_counters still drains, and peek reflects the drain.
    let taken = store.take_counters();
    assert_eq!((taken.report_hits, taken.report_misses), (1, 1));
    assert!(store.peek_counters().is_empty());
}
