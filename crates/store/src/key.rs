//! Cache-key derivation: stable hashes of full artifact input
//! descriptions.
//!
//! A key must change whenever *anything* that could change the artifact's
//! bytes changes, and must not change otherwise. The rules:
//!
//! * **Traces** are keyed on the trace binary-format version, the complete
//!   [`WorkloadProfile`] (every field, via its canonical `Debug` rendering
//!   — adding, removing or renaming a profile field automatically changes
//!   the rendering and thus the key) and the instruction count.
//! * **Reports** are keyed on the simulator schema version
//!   ([`btb_sim::SCHEMA_VERSION`]), the trace key they were produced from,
//!   and the complete [`BtbConfig`] and [`PipelineConfig`] (again via
//!   `Debug` renderings).
//!
//! The `Debug` rendering is a deliberate choice of canonical encoding: it
//! is exhaustive over fields (all these types derive `Debug`), stable for
//! a given source version, and *over*-sensitive rather than
//! under-sensitive — a formatting change merely invalidates caches, never
//! returns a stale artifact. Simulator behaviour changes that do not touch
//! any config struct must bump [`btb_sim::SCHEMA_VERSION`]; that is the
//! one manual obligation.

use crate::hash::{Digest, Sha256};
use btb_core::BtbConfig;
use btb_sim::PipelineConfig;
use btb_trace::WorkloadProfile;

/// Domain-separation tags so a trace key can never collide with a report
/// key built from the same bytes.
const TRACE_DOMAIN: &[u8] = b"btb-store:trace:v1\0";
const REPORT_DOMAIN: &[u8] = b"btb-store:report:v1\0";

/// Key addressing the trace generated from `profile` at `insts`
/// instructions.
#[must_use]
pub fn trace_key(profile: &WorkloadProfile, insts: usize) -> Digest {
    let mut h = Sha256::new();
    h.update(TRACE_DOMAIN);
    h.update(&btb_trace::TRACE_FORMAT_VERSION.to_le_bytes());
    h.update(format!("{profile:?}").as_bytes());
    h.update(&(insts as u64).to_le_bytes());
    h.finish()
}

/// Key addressing the [`btb_sim::SimReport`] of simulating the trace at
/// `trace` under (`config`, `pipeline`).
///
/// `pipeline` must be the exact configuration handed to
/// `btb_sim::simulate`, *including* warm-up — the harness applies warm-up
/// before keying.
#[must_use]
pub fn report_key(trace: &Digest, config: &BtbConfig, pipeline: &PipelineConfig) -> Digest {
    let mut h = Sha256::new();
    h.update(REPORT_DOMAIN);
    h.update(&btb_sim::SCHEMA_VERSION.to_le_bytes());
    h.update(&trace.0);
    h.update(format!("{config:?}").as_bytes());
    h.update(&[0]);
    h.update(format!("{pipeline:?}").as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_core::OrgKind;

    fn cfg() -> BtbConfig {
        BtbConfig::ideal(
            "I-BTB 16",
            OrgKind::Instruction {
                width: 16,
                skip_taken: false,
            },
        )
    }

    #[test]
    fn trace_keys_are_stable_and_input_sensitive() {
        let p = WorkloadProfile::tiny(3);
        assert_eq!(trace_key(&p, 1000), trace_key(&p, 1000));
        assert_ne!(trace_key(&p, 1000), trace_key(&p, 1001));
        let mut q = p.clone();
        q.mean_body_insts += 0.5;
        assert_ne!(trace_key(&p, 1000), trace_key(&q, 1000));
        let mut renamed = p.clone();
        renamed.name = "other".to_owned();
        assert_ne!(trace_key(&p, 1000), trace_key(&renamed, 1000));
    }

    #[test]
    fn report_keys_depend_on_every_input() {
        let t1 = trace_key(&WorkloadProfile::tiny(1), 1000);
        let t2 = trace_key(&WorkloadProfile::tiny(2), 1000);
        let pipe = PipelineConfig::paper();
        let base = report_key(&t1, &cfg(), &pipe);
        assert_eq!(base, report_key(&t1, &cfg(), &pipe));
        assert_ne!(base, report_key(&t2, &cfg(), &pipe));
        let mut other_cfg = cfg();
        other_cfg.l1.ways += 1;
        assert_ne!(base, report_key(&t1, &other_cfg, &pipe));
        let warm = pipe.clone().with_warmup(5_000);
        assert_ne!(base, report_key(&t1, &cfg(), &warm));
    }

    #[test]
    fn trace_and_report_domains_are_separated() {
        // Identical hash inputs after the domain tag must still produce
        // different keys.
        let t = trace_key(&WorkloadProfile::tiny(1), 64);
        assert_ne!(t, report_key(&t, &cfg(), &PipelineConfig::paper()));
    }
}
