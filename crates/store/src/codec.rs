//! Versioned binary codecs for the artifacts the store holds.
//!
//! * **Traces** reuse `btb-trace`'s stream format (`io::write_trace` /
//!   `io::read_trace`), which carries its own magic and version.
//! * **Reports** get a dedicated fixed-layout encoding here: little-endian
//!   counters plus bit-exact (`f64::to_bits`) floating-point aggregates,
//!   so a decoded report is *identical* — not just approximately equal —
//!   to the report that was encoded. Byte-identical downstream figures
//!   depend on this.
//!
//! Every decoder treats any malformed input as an error; the store maps
//! codec errors to cache misses.

use btb_sim::{SimReport, SimStats};
use btb_trace::{read_trace, write_trace, Trace};

/// Report encoding version; bump on any layout change.
const REPORT_CODEC_VERSION: u32 = 1;
const REPORT_MAGIC: &[u8; 8] = b"BTBREPRT";

/// Decode failure (malformed or truncated artifact payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed artifact: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Serializes a trace into the `btb-trace` stream format.
#[must_use]
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(trace.records.len() * 31 + 64);
    write_trace(&mut buf, trace).expect("writing to a Vec cannot fail");
    buf
}

/// Deserializes a trace from the `btb-trace` stream format.
///
/// # Errors
/// Returns [`CodecError`] on malformed input, including trailing garbage.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, CodecError> {
    let mut cursor = bytes;
    let trace = read_trace(&mut cursor).map_err(|_| CodecError("trace stream"))?;
    if !cursor.is_empty() {
        return Err(CodecError("trailing bytes after trace"));
    }
    Ok(trace)
}

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        if self.0.len() < n {
            return Err(CodecError("truncated report"));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(CodecError("implausible string length"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| CodecError("non-utf8 string"))
    }
}

/// Serializes a simulation report.
#[must_use]
pub fn encode_report(report: &SimReport) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(192));
    w.0.extend_from_slice(REPORT_MAGIC);
    w.u32(REPORT_CODEC_VERSION);
    w.str(&report.config_name);
    w.str(&report.workload);
    let s = &report.stats;
    for counter in [
        s.instructions,
        s.last_commit_cycle,
        s.btb_accesses,
        s.fetch_pcs,
        s.branches,
        s.taken_branches,
        s.taken_l1_hits,
        s.taken_l2_hits,
        s.cond_mispredicts,
        s.indirect_mispredicts,
        s.misfetches,
        s.untracked_exec_resteers,
        s.cond_branches,
    ] {
        w.u64(counter);
    }
    for sample in [
        report.l1_occupancy,
        report.l1_redundancy,
        report.l2_occupancy,
        report.l2_redundancy,
        report.l1i_hit_rate,
    ] {
        w.f64(sample);
    }
    w.0
}

/// Deserializes a simulation report encoded by [`encode_report`].
///
/// # Errors
/// Returns [`CodecError`] on malformed or truncated input.
pub fn decode_report(bytes: &[u8]) -> Result<SimReport, CodecError> {
    let mut r = Reader(bytes);
    if r.take(8)? != REPORT_MAGIC {
        return Err(CodecError("report magic"));
    }
    if r.u32()? != REPORT_CODEC_VERSION {
        return Err(CodecError("report codec version"));
    }
    let config_name = r.str()?;
    let workload = r.str()?;
    let stats = SimStats {
        instructions: r.u64()?,
        last_commit_cycle: r.u64()?,
        btb_accesses: r.u64()?,
        fetch_pcs: r.u64()?,
        branches: r.u64()?,
        taken_branches: r.u64()?,
        taken_l1_hits: r.u64()?,
        taken_l2_hits: r.u64()?,
        cond_mispredicts: r.u64()?,
        indirect_mispredicts: r.u64()?,
        misfetches: r.u64()?,
        untracked_exec_resteers: r.u64()?,
        cond_branches: r.u64()?,
    };
    let report = SimReport {
        config_name,
        workload: workload.into(),
        stats,
        l1_occupancy: r.f64()?,
        l1_redundancy: r.f64()?,
        l2_occupancy: r.f64()?,
        l2_redundancy: r.f64()?,
        l1i_hit_rate: r.f64()?,
    };
    if !r.0.is_empty() {
        return Err(CodecError("trailing bytes after report"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btb_trace::WorkloadProfile;

    fn sample_report() -> SimReport {
        SimReport {
            config_name: "I-BTB 16".to_owned(),
            workload: "web-small".into(),
            stats: SimStats {
                instructions: 123_456,
                last_commit_cycle: 45_678,
                btb_accesses: 9_999,
                fetch_pcs: 77_777,
                branches: 23_456,
                taken_branches: 12_345,
                taken_l1_hits: 10_000,
                taken_l2_hits: 2_000,
                cond_mispredicts: 345,
                indirect_mispredicts: 67,
                misfetches: 89,
                untracked_exec_resteers: 12,
                cond_branches: 20_000,
            },
            l1_occupancy: 0.731_234_567_89,
            l1_redundancy: 1.0625,
            l2_occupancy: 0.5,
            l2_redundancy: f64::from_bits(0x3ff0_0000_0000_0001),
            l1i_hit_rate: 0.999,
        }
    }

    #[test]
    fn report_roundtrip_is_bit_exact() {
        let r = sample_report();
        let decoded = decode_report(&encode_report(&r)).expect("roundtrip");
        assert_eq!(decoded, r);
        assert_eq!(
            decoded.l2_redundancy.to_bits(),
            r.l2_redundancy.to_bits(),
            "floats must roundtrip bit-exactly"
        );
    }

    #[test]
    fn report_rejects_corruption() {
        let mut bytes = encode_report(&sample_report());
        assert!(
            decode_report(&bytes[..bytes.len() - 1]).is_err(),
            "truncation"
        );
        bytes.push(0);
        assert!(decode_report(&bytes).is_err(), "trailing bytes");
        let mut wrong_magic = encode_report(&sample_report());
        wrong_magic[0] ^= 0xff;
        assert!(decode_report(&wrong_magic).is_err(), "magic");
        let mut wrong_version = encode_report(&sample_report());
        wrong_version[8] = 0xfe;
        assert!(decode_report(&wrong_version).is_err(), "version");
    }

    #[test]
    fn trace_roundtrip_and_trailing_garbage() {
        let t = Trace::generate(&WorkloadProfile::tiny(4), 2_000);
        let mut bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).expect("roundtrip"), t);
        bytes.push(0);
        assert!(decode_trace(&bytes).is_err(), "trailing bytes");
    }
}
