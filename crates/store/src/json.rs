//! A minimal JSON value model and serializer for machine-readable report
//! export.
//!
//! Hand-rolled because the build environment cannot fetch `serde_json`.
//! Output is deliberately deterministic: object members keep insertion
//! order, floats render with Rust's shortest-roundtrip formatting, and
//! non-finite floats (which JSON cannot represent) become `null`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite inputs are normalized to [`JsonValue::Null`]).
    Number(f64),
    /// An integer, kept separate so counters never render in exponent form.
    Integer(i64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number value; non-finite floats become `null`.
    #[must_use]
    pub fn number(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Number(v)
        } else {
            JsonValue::Null
        }
    }

    /// A string value.
    #[must_use]
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// An array built from an iterator.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Serializes with two-space indentation and a trailing newline, ready
    /// to write to a `.json` file.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Integer(v) => out.push_str(&v.to_string()),
            JsonValue::Number(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip: deterministic and
                    // parseable back to the identical value.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Object(vec![
            ("id".to_owned(), JsonValue::string("fig4")),
            ("count".to_owned(), JsonValue::Integer(3)),
            (
                "cells".to_owned(),
                JsonValue::array([JsonValue::number(1.5), JsonValue::number(f64::NAN)]),
            ),
            ("empty".to_owned(), JsonValue::Array(Vec::new())),
            ("flag".to_owned(), JsonValue::Bool(true)),
        ]);
        let s = v.to_pretty_string();
        assert!(s.contains("\"id\": \"fig4\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("null"), "NaN must render as null");
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::string("a\"b\\c\nd\te\u{1}");
        let s = v.to_pretty_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn float_rendering_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 12345.678901234567, 1e-12] {
            let rendered = match JsonValue::number(x) {
                JsonValue::Number(v) => v.to_string(),
                _ => unreachable!(),
            };
            let back: f64 = rendered.parse().expect("parseable");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }
}
