//! A minimal JSON value model, serializer and parser for machine-readable
//! report export and benchmark-trajectory files.
//!
//! Hand-rolled because the build environment cannot fetch `serde_json`.
//! Output is deliberately deterministic: object members keep insertion
//! order, floats render with Rust's shortest-roundtrip formatting,
//! non-finite floats (which JSON cannot represent) become `null`, and
//! supplementary-plane characters escape as UTF-16 surrogate pairs
//! (U+1F600 becomes `\ud83d\ude00`), which the parser recombines back
//! to the original scalar. The parser accepts
//! exactly the JSON this module (and any standard emitter) produces, with
//! container nesting bounded (inputs are user-supplied baseline files); it
//! exists so tools like `bench --compare` can read previously committed
//! `BENCH_*.json` files without external dependencies.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite inputs are normalized to [`JsonValue::Null`]).
    Number(f64),
    /// An integer, kept separate so counters never render in exponent form.
    Integer(i64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number value; non-finite floats become `null`.
    #[must_use]
    pub fn number(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Number(v)
        } else {
            JsonValue::Null
        }
    }

    /// A string value.
    #[must_use]
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// An array built from an iterator.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a message describing the first syntax error (with byte
    /// offset) on malformed input, including trailing non-whitespace.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        JsonValue::parse_impl(text, false)
    }

    /// Parses a JSON document, additionally rejecting duplicate object keys.
    ///
    /// [`JsonValue::parse`] keeps the first of two members with the same
    /// key silently (insertion-ordered objects make the duplicate
    /// unreachable through [`JsonValue::get`]), which is what most parsers
    /// do but hides typos in hand-edited request bodies and baseline
    /// files. Service endpoints and `btb-check validate-json --strict` use
    /// this variant so a duplicated key is a hard error instead.
    ///
    /// # Errors
    /// Everything [`JsonValue::parse`] rejects (syntax errors, trailing
    /// input, nesting beyond the depth limit), plus any object with two
    /// members of the same name.
    pub fn parse_strict(text: &str) -> Result<JsonValue, String> {
        JsonValue::parse_impl(text, true)
    }

    fn parse_impl(text: &str, strict: bool) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
            strict,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for absent keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of a `Number` or `Integer`; `None` otherwise.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            JsonValue::Integer(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value, if this is a `String`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline, ready
    /// to write to a `.json` file.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Integer(v) => out.push_str(&v.to_string()),
            JsonValue::Number(v) => {
                if v.is_finite() {
                    // `{}` on f64 is shortest-roundtrip: deterministic and
                    // parseable back to the identical value.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting [`JsonValue::parse`] accepts. The parser
/// recurses per nesting level, and baseline files are user-supplied (e.g.
/// via `bench --compare`): without a bound, a few hundred thousand `[`s
/// overflow the stack and abort the process. No document this workspace
/// emits nests deeper than ~6 levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    /// Reject duplicate object keys (see [`JsonValue::parse_strict`]).
    strict: bool,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    /// Runs a container parser one nesting level down, rejecting documents
    /// deeper than [`MAX_DEPTH`] (each level is a stack frame; unbounded
    /// nesting in a user-supplied file would overflow the stack).
    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<JsonValue, String>,
    ) -> Result<JsonValue, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            out.push(match code {
                                // A high surrogate must pair with the next
                                // `\uDC00`..`\uDFFF` escape to form one
                                // supplementary-plane char (this is how
                                // this module and every standard emitter
                                // escape non-BMP chars).
                                0xd800..=0xdbff => match self.low_surrogate()? {
                                    Some(low) => {
                                        let scalar =
                                            0x1_0000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                        char::from_u32(scalar).unwrap_or('\u{fffd}')
                                    }
                                    // Unpaired high surrogate: replacement
                                    // char, as before.
                                    None => '\u{fffd}',
                                },
                                // Lone low surrogate.
                                0xdc00..=0xdfff => '\u{fffd}',
                                _ => char::from_u32(code).unwrap_or('\u{fffd}'),
                            });
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape (the `\u` itself already
    /// consumed), advancing past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    /// If the input continues with a `\uDC00`..`\uDFFF` escape, consumes it
    /// and returns its code unit; otherwise consumes nothing. `Err` only on
    /// a malformed hex escape.
    fn low_surrogate(&mut self) -> Result<Option<u32>, String> {
        if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
            return Ok(None);
        }
        let saved = self.pos;
        self.pos += 2;
        let code = self.hex4()?;
        if (0xdc00..=0xdfff).contains(&code) {
            Ok(Some(code))
        } else {
            // Not a low surrogate: leave it for the main loop to parse as
            // its own escape.
            self.pos = saved;
            Ok(None)
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if fractional {
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            // Integers that overflow i64 fall back to f64.
            text.parse::<i64>().map(JsonValue::Integer).or_else(|_| {
                text.parse::<f64>()
                    .map(JsonValue::Number)
                    .map_err(|_| format!("bad number at byte {start}"))
            })
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if self.strict && members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key \"{key}\" at byte {key_at}"));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c if (c as u32) > 0xffff => {
                // JSON `\u` escapes are 4 hex digits of UTF-16, so a
                // supplementary-plane char (emoji, rare CJK) must be a
                // surrogate *pair* — `\u{:04x}` on the scalar value would
                // print 5+ digits, which is not legal JSON.
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = JsonValue::Object(vec![
            ("id".to_owned(), JsonValue::string("fig4")),
            ("count".to_owned(), JsonValue::Integer(3)),
            (
                "cells".to_owned(),
                JsonValue::array([JsonValue::number(1.5), JsonValue::number(f64::NAN)]),
            ),
            ("empty".to_owned(), JsonValue::Array(Vec::new())),
            ("flag".to_owned(), JsonValue::Bool(true)),
        ]);
        let s = v.to_pretty_string();
        assert!(s.contains("\"id\": \"fig4\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("null"), "NaN must render as null");
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::string("a\"b\\c\nd\te\u{1}");
        let s = v.to_pretty_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn non_bmp_chars_escape_as_surrogate_pairs() {
        // Pre-fix, a supplementary-plane char either rendered raw or (via
        // `\u{:04x}`) as 5 hex digits — the latter is not legal JSON.
        let s = JsonValue::string("ok \u{1f600}!").to_pretty_string();
        assert_eq!(s, "\"ok \\ud83d\\ude00!\"\n");
        assert!(s.is_ascii(), "escaped output must be plain ASCII");
    }

    #[test]
    fn parser_recombines_surrogate_pairs() {
        // What this module — and any standard emitter (Python's
        // json.dumps, serde_json with escape_unicode) — produces for 😀.
        let v = JsonValue::parse("\"\\ud83d\\ude00\"").expect("parses");
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Lone surrogates (either half) still degrade to the replacement
        // char instead of erroring.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\"").unwrap().as_str(),
            Some("\u{fffd}")
        );
        assert_eq!(
            JsonValue::parse("\"\\ude00\"").unwrap().as_str(),
            Some("\u{fffd}")
        );
        // High surrogate followed by a non-surrogate escape: the second
        // escape survives as its own char.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\u0041\"").unwrap().as_str(),
            Some("\u{fffd}A")
        );
    }

    #[test]
    fn emoji_workload_name_round_trips() {
        // An emoji-bearing workload name must survive serialize → parse
        // byte-exactly (pre-fix the parser turned the pair into U+FFFD
        // U+FFFD even though the emitter produced it).
        let v = JsonValue::Object(vec![(
            "workload".to_owned(),
            JsonValue::string("web-\u{1f600}\u{10348}-srv"),
        )]);
        let text = v.to_pretty_string();
        let back = JsonValue::parse(&text).expect("parses");
        assert_eq!(back, v);
        // And the serialized form itself is stable under a second trip.
        assert_eq!(back.to_pretty_string(), text);
    }

    #[test]
    fn nesting_beyond_depth_limit_is_an_error_not_a_crash() {
        // Pre-fix, a user-supplied baseline of 100K `[`s recursed once per
        // level and overflowed the stack (process abort).
        let deep_ok = format!("{}0{}", "[".repeat(128), "]".repeat(128));
        assert!(JsonValue::parse(&deep_ok).is_ok(), "128 levels must parse");
        let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
        let err = JsonValue::parse(&too_deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let hostile = "[".repeat(100_000);
        assert!(JsonValue::parse(&hostile).is_err());
        // Mixed object/array nesting counts every level.
        let mixed = format!("{}1{}", "{\"k\":[".repeat(70), "]}".repeat(70));
        assert!(JsonValue::parse(&mixed).unwrap_err().contains("nesting"));
    }

    #[test]
    fn parse_roundtrips_serializer_output() {
        let v = JsonValue::Object(vec![
            ("id".to_owned(), JsonValue::string("fig4")),
            ("count".to_owned(), JsonValue::Integer(-3)),
            ("rate".to_owned(), JsonValue::Number(1.25e-3)),
            ("flag".to_owned(), JsonValue::Bool(false)),
            ("none".to_owned(), JsonValue::Null),
            (
                "cells".to_owned(),
                JsonValue::array([
                    JsonValue::Integer(1),
                    JsonValue::string("a\"b\\c\nd"),
                    JsonValue::Array(Vec::new()),
                    JsonValue::Object(Vec::new()),
                ]),
            ),
        ]);
        let parsed = JsonValue::parse(&v.to_pretty_string()).expect("parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accepts_compact_and_rejects_garbage() {
        let v = JsonValue::parse(r#"{"a":[1,2.5,true],"b":{"c":null}}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Null));
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err(), "trailing input");
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn strict_parse_rejects_duplicate_keys() {
        // Lenient parse keeps the first member (the duplicate is
        // unreachable via get); strict makes it a hard error.
        let dup = r#"{"insts": 1000, "insts": 2000}"#;
        let v = JsonValue::parse(dup).expect("lenient parse accepts");
        assert_eq!(v.get("insts").and_then(JsonValue::as_f64), Some(1000.0));
        let err = JsonValue::parse_strict(dup).unwrap_err();
        assert!(err.contains("duplicate object key \"insts\""), "{err}");

        // Duplicates are caught at any nesting level.
        let nested = r#"{"a": {"b": 1, "b": 2}}"#;
        assert!(JsonValue::parse_strict(nested).is_err());
        // Same key in *different* objects is fine.
        let siblings = r#"{"a": {"n": 1}, "b": {"n": 2}}"#;
        assert!(JsonValue::parse_strict(siblings).is_ok());
        // Keys compare post-unescape: "a" and "a" collide.
        assert!(JsonValue::parse_strict(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn strict_parse_keeps_lenient_rejections() {
        // Strict is a superset of lenient: trailing garbage and the depth
        // limit stay errors.
        assert!(JsonValue::parse_strict("1 2").is_err(), "trailing input");
        assert!(JsonValue::parse_strict("{").is_err());
        let too_deep = format!("{}0{}", "[".repeat(129), "]".repeat(129));
        assert!(JsonValue::parse_strict(&too_deep)
            .unwrap_err()
            .contains("nesting"));
        // And everything valid still parses identically.
        let doc = r#"{"a":[1,2.5,true],"b":{"c":null}}"#;
        assert_eq!(
            JsonValue::parse_strict(doc).unwrap(),
            JsonValue::parse(doc).unwrap()
        );
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = JsonValue::parse(r#"{"n": 3, "f": 1.5, "s": "x"}"#).expect("parses");
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("s").and_then(JsonValue::as_f64), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }

    #[test]
    fn float_rendering_roundtrips() {
        for x in [0.1, 1.0 / 3.0, 12345.678901234567, 1e-12] {
            let rendered = match JsonValue::number(x) {
                JsonValue::Number(v) => v.to_string(),
                _ => unreachable!(),
            };
            let back: f64 = rendered.parse().expect("parseable");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }
}
