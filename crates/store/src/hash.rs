//! SHA-256, implemented locally so content addressing does not depend on
//! unavailable external crates.
//!
//! The store uses SHA-256 both for cache keys (hashes of artifact *input
//! descriptions*) and for payload checksums (hashes of artifact *bytes*).
//! A 256-bit digest makes accidental collisions a non-concern at any
//! realistic experiment-matrix size.

/// A 256-bit digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex rendering (64 characters).
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
            s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
        }
        s
    }

    /// Parses a 64-character hex string.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.is_ascii() {
            return None;
        }
        let bytes = s.as_bytes();
        let mut out = [0u8; 32];
        for (i, o) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *o = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 state.
#[derive(Debug, Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.h.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let block: [u8; 64] = rest[..64].try_into().expect("64-byte block");
            self.compress(&block);
            rest = &rest[64..];
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    #[must_use]
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: `update` would recount these bytes.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, v) in out.chunks_exact_mut(4).zip(self.h) {
            chunk.copy_from_slice(&v.to_be_bytes());
        }
        Digest(out)
    }

    /// One-shot digest of `data`.
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 test vectors.
    #[test]
    fn empty_input_matches_nist_vector() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_matches_nist_vector() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message_matches_nist_vector() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), Sha256::digest(&data));
    }

    #[test]
    fn million_a_matches_nist_vector() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"a".repeat(63)), None);
    }
}
