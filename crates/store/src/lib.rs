//! # btb-store: persistent content-addressed experiment store
//!
//! Simulation campaigns in this workspace are pure functions of their
//! inputs: a trace is determined by its [`btb_trace::WorkloadProfile`]
//! and length, a [`btb_sim::SimReport`] by the trace plus the BTB and
//! pipeline configurations. `btb-store` exploits that purity with a
//! content-addressed on-disk cache:
//!
//! * [`key`] derives stable cache keys by hashing the *complete* input
//!   description of each artifact (profiles, configs, format/schema
//!   versions) with SHA-256 ([`hash`]).
//! * [`codec`] provides versioned binary encodings; report floats
//!   roundtrip bit-exactly, so figures rendered from cached reports are
//!   byte-identical to figures rendered from fresh simulations.
//! * [`store`] holds the artifacts: atomic publish (temp file + rename),
//!   per-artifact checksums verified on every load, and corrupt entries
//!   downgraded to cache misses — the store can accelerate a run but
//!   never break one.
//! * [`json`] renders reports as structured JSON for machine-readable
//!   export (`figures --json`).

#![warn(missing_docs)]

pub mod codec;
pub mod hash;
pub mod json;
pub mod key;
pub mod store;

pub use codec::CodecError;
pub use hash::{Digest, Sha256};
pub use json::JsonValue;
pub use key::{report_key, trace_key};
pub use store::{CounterSnapshot, Failpoint, GcOutcome, Kind, Store, StoreStats, TraceStream};
