//! The on-disk content-addressed store.
//!
//! Layout (everything under one root directory):
//!
//! ```text
//! <root>/objects/<hh>/<56 hex chars>.obj   # hh = first key byte, sharded
//! <root>/tmp/                              # staging for atomic publish
//! ```
//!
//! Every object file carries a header (magic, artifact kind, payload
//! length, SHA-256 checksum of the payload) followed by the payload.
//! Publishing writes the full file into `tmp/` and `rename`s it into
//! place, so readers never observe partial objects. Loading verifies the
//! header and checksum; **any** failure — missing file, bad magic, wrong
//! kind, checksum mismatch, undecodable payload — degrades to a cache
//! miss (with a stderr warning for actively corrupt entries, which are
//! also unlinked so they regenerate cleanly).

use crate::codec;
use crate::hash::{Digest, Sha256};
use crate::key;
use btb_core::BtbConfig;
use btb_sim::{PipelineConfig, SimReport};
use btb_trace::{ReadTraceError, Trace, TraceReader, TraceRecord, TraceWriter, WorkloadProfile};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const STORE_MAGIC: &[u8; 8] = b"BTBSTOR1";
const HEADER_LEN: usize = 8 + 1 + 8 + 32;

/// What an object holds; part of the object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A serialized workload trace.
    Trace,
    /// A serialized simulation report.
    Report,
}

impl Kind {
    fn code(self) -> u8 {
        match self {
            Kind::Trace => 1,
            Kind::Report => 2,
        }
    }

    fn from_code(code: u8) -> Option<Kind> {
        match code {
            1 => Some(Kind::Trace),
            2 => Some(Kind::Report),
            _ => None,
        }
    }

    /// Human-readable label (used by `store stats`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Kind::Trace => "trace",
            Kind::Report => "report",
        }
    }
}

/// Monotonic hit/miss counters, split by artifact kind, plus raw object
/// I/O volume.
#[derive(Debug, Default)]
pub struct Counters {
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Trace fetches served from the store.
    pub trace_hits: u64,
    /// Trace fetches that fell back to generation.
    pub trace_misses: u64,
    /// Report fetches served from the store.
    pub report_hits: u64,
    /// Report fetches that fell back to simulation.
    pub report_misses: u64,
    /// Verified payload bytes read from objects (headers excluded).
    pub bytes_read: u64,
    /// Payload bytes successfully published (headers excluded).
    pub bytes_written: u64,
}

impl CounterSnapshot {
    /// True if nothing was counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == CounterSnapshot::default()
    }
}

impl std::fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "traces {} hit / {} miss; reports {} hit / {} miss; {} B read / {} B written",
            self.trace_hits,
            self.trace_misses,
            self.report_hits,
            self.report_misses,
            self.bytes_read,
            self.bytes_written
        )
    }
}

/// Aggregate store statistics (`store stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of trace objects.
    pub trace_objects: u64,
    /// Bytes held by trace objects (headers included).
    pub trace_bytes: u64,
    /// Number of report objects.
    pub report_objects: u64,
    /// Bytes held by report objects (headers included).
    pub report_bytes: u64,
    /// Objects whose header could not be read (corrupt or foreign files).
    pub unreadable_objects: u64,
}

/// Result of a [`Store::gc`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Objects removed.
    pub removed_objects: u64,
    /// Bytes freed.
    pub removed_bytes: u64,
    /// Objects retained.
    pub kept_objects: u64,
}

/// A fault-injection point for crash-consistency tests.
///
/// Armed with [`Store::inject_failpoint`]; the next matching operation
/// trips it (one-shot) and behaves like the simulated fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failpoint {
    /// The next [`Store::put_raw`] writes a *truncated* object into
    /// `tmp/` and returns an error without renaming or cleaning up —
    /// exactly the debris a process killed mid-publish leaves behind.
    CrashBeforeRename,
}

/// A content-addressed artifact store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    counters: Counters,
    tmp_seq: AtomicU64,
    /// One-shot armed failpoint; 0 = none, 1 = `CrashBeforeRename`.
    failpoint: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    /// Propagates failures creating the store directories.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("tmp"))?;
        Ok(Store {
            root,
            counters: Counters::default(),
            tmp_seq: AtomicU64::new(0),
            failpoint: AtomicU64::new(0),
        })
    }

    /// Arms `fp` for the next matching operation on this handle (one-shot).
    ///
    /// Test-only by intent: lets crash-consistency tests simulate a
    /// process dying mid-publish without actually killing anything.
    pub fn inject_failpoint(&self, fp: Failpoint) {
        let code = match fp {
            Failpoint::CrashBeforeRename => 1,
        };
        self.failpoint.store(code, Ordering::SeqCst);
    }

    fn take_failpoint(&self) -> Option<Failpoint> {
        match self.failpoint.swap(0, Ordering::SeqCst) {
            1 => Some(Failpoint::CrashBeforeRename),
            _ => None,
        }
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, key: &Digest) -> PathBuf {
        let hex = key.to_hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{}.obj", &hex[2..]))
    }

    // -- raw object layer ---------------------------------------------------

    /// Loads and verifies the payload stored under `key`, or `None` on any
    /// miss (absent, corrupt, wrong kind). Corrupt entries are warned
    /// about and unlinked so the slot regenerates cleanly.
    #[must_use]
    pub fn get_raw(&self, key: &Digest, kind: Kind) -> Option<Vec<u8>> {
        let path = self.object_path(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => return None, // plain miss: nothing stored
        };
        match read_verified(&mut file, key, kind) {
            Ok(payload) => {
                self.counters
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                Some(payload)
            }
            Err(why) => {
                eprintln!(
                    "btb-store: warning: discarding corrupt entry {} ({why}); will regenerate",
                    path.display()
                );
                drop(file);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Atomically publishes `payload` under `key`.
    ///
    /// # Errors
    /// Propagates I/O failures; a failed publish leaves no partial object
    /// behind (at worst a stale file in `tmp/`, removed by `gc`).
    pub fn put_raw(&self, key: &Digest, kind: Kind, payload: &[u8]) -> io::Result<()> {
        let final_path = self.object_path(key);
        if let Some(parent) = final_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp_path = self.root.join("tmp").join(format!(
            "{}-{}-{}.tmp",
            key.to_hex(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let checksum = Sha256::digest(payload);
        if self.take_failpoint() == Some(Failpoint::CrashBeforeRename) {
            // Simulate a process killed mid-publish: a full header but a
            // truncated payload sits in tmp/, nothing reaches objects/,
            // and no cleanup runs (the "process" is dead).
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(STORE_MAGIC)?;
            f.write_all(&[kind.code()])?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&checksum.0)?;
            f.write_all(&payload[..payload.len() / 2])?;
            return Err(io::Error::other("failpoint: crashed before rename"));
        }
        let result = (|| -> io::Result<()> {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(STORE_MAGIC)?;
            f.write_all(&[kind.code()])?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&checksum.0)?;
            f.write_all(payload)?;
            f.sync_data()?;
            std::fs::rename(&tmp_path, &final_path)?;
            self.counters
                .bytes_written
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
        }
        result
    }

    // -- typed artifact layer -----------------------------------------------

    /// Fetches the trace for (`profile`, `insts`), counting a hit or miss.
    #[must_use]
    pub fn get_trace(&self, profile: &WorkloadProfile, insts: usize) -> Option<Trace> {
        let k = key::trace_key(profile, insts);
        let decoded =
            self.get_raw(&k, Kind::Trace)
                .and_then(|payload| match codec::decode_trace(&payload) {
                    Ok(trace) => Some(trace),
                    Err(why) => {
                        self.discard_undecodable(&k, why);
                        None
                    }
                });
        let counter = if decoded.is_some() {
            &self.counters.trace_hits
        } else {
            &self.counters.trace_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        decoded
    }

    /// Publishes the trace for (`profile`, `insts`). Publish failures are
    /// downgraded to warnings: the cache is an accelerator, not a
    /// dependency.
    pub fn put_trace(&self, profile: &WorkloadProfile, insts: usize, trace: &Trace) {
        let k = key::trace_key(profile, insts);
        if let Err(e) = self.put_raw(&k, Kind::Trace, &codec::encode_trace(trace)) {
            eprintln!("btb-store: warning: failed to publish trace {k}: {e}");
        }
    }

    /// Publishes the trace for (`profile`, `insts`) straight off a live
    /// record iterator, never materializing the record vector. The object
    /// header needs the payload length and checksum, which only exist once
    /// the stream is drained, so the publish writes a placeholder header,
    /// streams the chunked payload through a running hash, then seeks back
    /// and patches the header before the atomic rename — readers still
    /// never observe a partial or unverifiable object.
    ///
    /// Returns the number of records written.
    ///
    /// # Errors
    /// Propagates I/O failures; a failed publish leaves no partial object
    /// behind.
    pub fn put_trace_stream(
        &self,
        profile: &WorkloadProfile,
        insts: usize,
        name: &str,
        records: impl Iterator<Item = TraceRecord>,
    ) -> io::Result<u64> {
        let k = key::trace_key(profile, insts);
        let final_path = self.object_path(&k);
        if let Some(parent) = final_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp_path = self.root.join("tmp").join(format!(
            "{}-{}-{}.tmp",
            k.to_hex(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> io::Result<u64> {
            let mut file = std::fs::File::create(&tmp_path)?;
            file.write_all(STORE_MAGIC)?;
            file.write_all(&[Kind::Trace.code()])?;
            file.write_all(&[0u8; 8 + 32])?; // placeholder length + checksum
            let mut sink = HashingWriter {
                inner: BufWriter::new(file),
                hasher: Sha256::new(),
                len: 0,
            };
            let mut tw = TraceWriter::new(&mut sink, name)?;
            let mut written = 0u64;
            for rec in records {
                tw.push(&rec)?;
                written += 1;
            }
            tw.finish()?;
            sink.inner.flush()?;
            let mut file = sink
                .inner
                .into_inner()
                .map_err(io::IntoInnerError::into_error)?;
            file.seek(SeekFrom::Start(9))?; // past magic + kind byte
            file.write_all(&sink.len.to_le_bytes())?;
            file.write_all(&sink.hasher.finish().0)?;
            file.sync_data()?;
            std::fs::rename(&tmp_path, &final_path)?;
            self.counters
                .bytes_written
                .fetch_add(sink.len, Ordering::Relaxed);
            Ok(written)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp_path);
        }
        result
    }

    /// Opens the stored trace for (`profile`, `insts`) as a record stream,
    /// counting a hit or miss. Integrity is established *before* any
    /// record is handed out: a first pass streams the payload through a
    /// running SHA-256 in fixed-size blocks (flat memory at any trace
    /// length) and compares it against the header checksum; corrupt
    /// entries degrade to a miss and are unlinked, exactly like
    /// [`Store::get_raw`]. Only then does the returned [`TraceStream`]
    /// replay records from disk chunk by chunk.
    #[must_use]
    pub fn open_trace_stream(
        &self,
        profile: &WorkloadProfile,
        insts: usize,
    ) -> Option<TraceStream> {
        let k = key::trace_key(profile, insts);
        let path = self.object_path(&k);
        let opened = std::fs::File::open(&path).ok().and_then(|mut file| {
            match verify_streaming(&mut file, Kind::Trace) {
                Ok(()) => {
                    let payload_len = file
                        .metadata()
                        .map_or(0, |m| m.len().saturating_sub(HEADER_LEN as u64));
                    file.seek(SeekFrom::Start(HEADER_LEN as u64)).ok()?;
                    match TraceReader::new(BufReader::new(file)) {
                        Ok(reader) => {
                            self.counters
                                .bytes_read
                                .fetch_add(payload_len, Ordering::Relaxed);
                            Some(TraceStream { reader })
                        }
                        Err(_) => {
                            self.discard_undecodable(&k, codec::CodecError("trace stream header"));
                            None
                        }
                    }
                }
                Err(why) => {
                    eprintln!(
                        "btb-store: warning: discarding corrupt entry {} ({why}); will regenerate",
                        path.display()
                    );
                    let _ = std::fs::remove_file(&path);
                    None
                }
            }
        });
        let counter = if opened.is_some() {
            &self.counters.trace_hits
        } else {
            &self.counters.trace_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        opened
    }

    /// Fetches the report stored under `report_key`, counting a hit or
    /// miss. Build the key with [`crate::report_key`].
    #[must_use]
    pub fn get_report(&self, report_key: &Digest) -> Option<SimReport> {
        let decoded = self.get_raw(report_key, Kind::Report).and_then(|payload| {
            match codec::decode_report(&payload) {
                Ok(report) => Some(report),
                Err(why) => {
                    self.discard_undecodable(report_key, why);
                    None
                }
            }
        });
        let counter = if decoded.is_some() {
            &self.counters.report_hits
        } else {
            &self.counters.report_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        decoded
    }

    /// Publishes a report under `report_key` (see [`Store::put_trace`] on
    /// failure handling).
    pub fn put_report(&self, report_key: &Digest, report: &SimReport) {
        if let Err(e) = self.put_raw(report_key, Kind::Report, &codec::encode_report(report)) {
            eprintln!("btb-store: warning: failed to publish report {report_key}: {e}");
        }
    }

    /// Convenience: derives the report key for (`trace_key`, `config`,
    /// `pipeline`).
    #[must_use]
    pub fn report_key(trace_key: &Digest, config: &BtbConfig, pipeline: &PipelineConfig) -> Digest {
        key::report_key(trace_key, config, pipeline)
    }

    fn discard_undecodable(&self, key: &Digest, why: codec::CodecError) {
        let path = self.object_path(key);
        eprintln!(
            "btb-store: warning: discarding undecodable entry {} ({why}); will regenerate",
            path.display()
        );
        let _ = std::fs::remove_file(path);
    }

    // -- counters -----------------------------------------------------------

    /// Reads the hit/miss counters without resetting them. Long-running
    /// consumers (the `btb-serve` `/store/stats` endpoint) want a
    /// monotonic view; [`Store::take_counters`] would zero the very
    /// numbers each poll is supposed to report.
    #[must_use]
    pub fn peek_counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            trace_hits: self.counters.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.counters.trace_misses.load(Ordering::Relaxed),
            report_hits: self.counters.report_hits.load(Ordering::Relaxed),
            report_misses: self.counters.report_misses.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Reads and resets the hit/miss counters (used for per-experiment
    /// reporting).
    pub fn take_counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            trace_hits: self.counters.trace_hits.swap(0, Ordering::Relaxed),
            trace_misses: self.counters.trace_misses.swap(0, Ordering::Relaxed),
            report_hits: self.counters.report_hits.swap(0, Ordering::Relaxed),
            report_misses: self.counters.report_misses.swap(0, Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.swap(0, Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.swap(0, Ordering::Relaxed),
        }
    }

    // -- maintenance --------------------------------------------------------

    /// Walks the store and reports object counts and sizes by kind.
    ///
    /// # Errors
    /// Propagates directory-walk failures (individual unreadable objects
    /// are counted, not fatal).
    pub fn stats(&self) -> io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        self.walk_objects(|path, len| {
            match read_kind(path) {
                Some(Kind::Trace) => {
                    stats.trace_objects += 1;
                    stats.trace_bytes += len;
                }
                Some(Kind::Report) => {
                    stats.report_objects += 1;
                    stats.report_bytes += len;
                }
                None => stats.unreadable_objects += 1,
            }
            Ok(())
        })?;
        Ok(stats)
    }

    /// Removes objects last modified more than `max_age` ago, plus any
    /// stale staging files. `max_age` of zero clears the store.
    ///
    /// # Errors
    /// Propagates directory-walk failures.
    pub fn gc(&self, max_age: std::time::Duration) -> io::Result<GcOutcome> {
        let now = std::time::SystemTime::now();
        let mut outcome = GcOutcome::default();
        self.walk_objects(|path, len| {
            let expired = std::fs::metadata(path)
                .and_then(|m| m.modified())
                .map(|mtime| now.duration_since(mtime).is_ok_and(|age| age >= max_age))
                .unwrap_or(true);
            if expired && std::fs::remove_file(path).is_ok() {
                outcome.removed_objects += 1;
                outcome.removed_bytes += len;
            } else {
                outcome.kept_objects += 1;
            }
            Ok(())
        })?;
        // Staging files are never legitimately old: any process writes and
        // renames within milliseconds.
        if let Ok(entries) = std::fs::read_dir(self.root.join("tmp")) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(outcome)
    }

    fn walk_objects(&self, mut visit: impl FnMut(&Path, u64) -> io::Result<()>) -> io::Result<()> {
        let objects = self.root.join("objects");
        for shard in std::fs::read_dir(&objects)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let entry = entry?;
                let meta = entry.metadata()?;
                if meta.is_file() {
                    visit(&entry.path(), meta.len())?;
                }
            }
        }
        Ok(())
    }
}

/// [`Write`] adapter that feeds everything written through a running
/// SHA-256 and byte count, so a streamed payload's header fields are known
/// at the end without buffering the payload.
struct HashingWriter<W: Write> {
    inner: W,
    hasher: Sha256,
    len: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A verified stored trace, replayed record-by-record from disk.
///
/// Produced by [`Store::open_trace_stream`], which has already checked the
/// object checksum, so iterator errors indicate a file that changed
/// underneath us mid-read — callers should treat them as fatal rather than
/// as cache misses.
#[derive(Debug)]
pub struct TraceStream {
    reader: TraceReader<BufReader<std::fs::File>>,
}

impl TraceStream {
    /// The trace name recorded in the stream.
    #[must_use]
    pub fn name(&self) -> &str {
        self.reader.name()
    }
}

impl Iterator for TraceStream {
    type Item = Result<TraceRecord, ReadTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next()
    }
}

/// Streaming variant of [`read_verified`]: checks header and payload
/// checksum by hashing fixed-size blocks, never holding the payload in
/// memory. Leaves the file position unspecified.
fn verify_streaming(file: &mut std::fs::File, kind: Kind) -> Result<(), String> {
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|e| format!("short header: {e}"))?;
    if &header[..8] != STORE_MAGIC {
        return Err("bad magic".to_owned());
    }
    if Kind::from_code(header[8]) != Some(kind) {
        return Err(format!(
            "kind byte {} != expected {}",
            header[8],
            kind.code()
        ));
    }
    let payload_len = u64::from_le_bytes(header[9..17].try_into().expect("8B"));
    let stored_checksum = Digest(header[17..49].try_into().expect("32B"));
    let mut hasher = Sha256::new();
    let mut remaining = payload_len;
    let mut block = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = block.len().min(remaining as usize);
        file.read_exact(&mut block[..want])
            .map_err(|e| format!("payload read: {e}"))?;
        hasher.update(&block[..want]);
        remaining -= want as u64;
    }
    let mut trailing = [0u8; 1];
    if file.read(&mut trailing).map_err(|e| e.to_string())? != 0 {
        return Err(format!("payload longer than header {payload_len}"));
    }
    let actual = hasher.finish();
    if actual != stored_checksum {
        return Err(format!(
            "checksum mismatch: stored {stored_checksum}, computed {actual}"
        ));
    }
    Ok(())
}

/// Reads the kind byte from an object header, `None` if unreadable or not
/// a store object.
fn read_kind(path: &Path) -> Option<Kind> {
    let mut file = std::fs::File::open(path).ok()?;
    let mut header = [0u8; 9];
    file.read_exact(&mut header).ok()?;
    if &header[..8] != STORE_MAGIC {
        return None;
    }
    Kind::from_code(header[8])
}

fn read_verified(file: &mut std::fs::File, key: &Digest, kind: Kind) -> Result<Vec<u8>, String> {
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|e| format!("short header: {e}"))?;
    if &header[..8] != STORE_MAGIC {
        return Err("bad magic".to_owned());
    }
    if Kind::from_code(header[8]) != Some(kind) {
        return Err(format!(
            "kind byte {} != expected {}",
            header[8],
            kind.code()
        ));
    }
    let payload_len = u64::from_le_bytes(header[9..17].try_into().expect("8B"));
    let stored_checksum = Digest(header[17..49].try_into().expect("32B"));
    // An absurd length means a corrupt header; don't try to allocate it.
    if payload_len > 1 << 34 {
        return Err(format!("implausible payload length {payload_len}"));
    }
    let mut payload = Vec::with_capacity(payload_len as usize);
    file.take(payload_len + 1)
        .read_to_end(&mut payload)
        .map_err(|e| format!("payload read: {e}"))?;
    if payload.len() as u64 != payload_len {
        return Err(format!(
            "payload length {} != header {payload_len} for key {key}",
            payload.len()
        ));
    }
    let actual = Sha256::digest(&payload);
    if actual != stored_checksum {
        return Err(format!(
            "checksum mismatch: stored {stored_checksum}, computed {actual}"
        ));
    }
    Ok(payload)
}
