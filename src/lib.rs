//! `btb-orgs` — a reproduction of *"Branch Target Buffer Organizations"*
//! (Arthur Perais and Rami Sheikh, MICRO 2023).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`trace`] — synthetic server-workload traces (the CVP-1 stand-in);
//! * [`bpred`] — hashed perceptron, indirect predictor, RAS;
//! * [`btb`] — the four BTB organizations (I-/R-/B-/MB-BTB) over two-level
//!   hierarchies: the paper's core contribution;
//! * [`uarch`] — caches, TLBs, prefetchers, memory hierarchy;
//! * [`sim`] — the decoupled-fetch cycle simulator;
//! * [`harness`] — experiments regenerating every table and figure.
//!
//! # Quick start
//! ```
//! use btb_orgs::btb::{BtbConfig, OrgKind};
//! use btb_orgs::sim::{simulate, PipelineConfig};
//! use btb_orgs::trace::{Trace, WorkloadProfile};
//!
//! let trace = Trace::generate(&WorkloadProfile::tiny(1), 20_000);
//! let btb = BtbConfig::ideal(
//!     "I-BTB 16",
//!     OrgKind::Instruction { width: 16, skip_taken: false },
//! );
//! let report = simulate(&trace, btb, PipelineConfig::paper());
//! println!("IPC {:.2}", report.ipc());
//! # assert!(report.ipc() > 0.0);
//! ```
//!
//! See the `examples/` directory for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

#![warn(missing_docs)]

/// Synthetic workload traces (re-export of `btb-trace`).
pub mod trace {
    pub use btb_trace::*;
}

/// Branch predictors (re-export of `btb-bpred`).
pub mod bpred {
    pub use btb_bpred::*;
}

/// BTB organizations (re-export of `btb-core`).
pub mod btb {
    pub use btb_core::*;
}

/// Microarchitectural substrates (re-export of `btb-uarch`).
pub mod uarch {
    pub use btb_uarch::*;
}

/// The cycle-level simulator (re-export of `btb-sim`).
pub mod sim {
    pub use btb_sim::*;
}

/// Experiment harness (re-export of `btb-harness`).
pub mod harness {
    pub use btb_harness::*;
}
